#pragma once

#include <any>
#include <climits>
#include <coroutine>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <utility>

#include "sim/engine.hpp"
#include "sim/time.hpp"
#include "support/ring_buffer.hpp"

namespace dlb::sim {

/// Wildcards for tag/source matching, mirroring PVM's pvm_recv(-1, -1).
inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

/// A simulated message.  The payload is type-erased; `bytes` is the on-wire
/// size used for network cost accounting (payload size and wire size are
/// decoupled, as they are in a real message-passing stack).
struct Message {
  int source = kAnySource;
  int tag = 0;
  std::size_t bytes = 0;
  std::any payload;
  SimTime sent_at = 0;
  SimTime delivered_at = 0;

  /// Typed payload accessor; throws std::bad_any_cast on type mismatch.
  template <typename T>
  [[nodiscard]] const T& as() const {
    return std::any_cast<const T&>(payload);
  }
};

/// Per-process tagged mailbox with awaitable receive.  Delivery order is
/// preserved; a receive matches the oldest queued message whose tag/source
/// satisfy the filter, exactly like PVM's receive semantics.  Suspended
/// receivers are served in arrival (registration) order.  Pending messages
/// and waiters live in ring buffers that stop allocating once warm, so
/// steady-state delivery is allocation-free.
///
/// Filters are closed tag *ranges* [tag_lo, tag_hi] plus an optional source;
/// the single-tag receive is the degenerate range.  Range receives let the
/// fault-tolerant protocol wait on its whole contiguous tag block in one
/// suspension and dispatch on the tag it got.
class Mailbox {
 public:
  explicit Mailbox(Engine& engine) noexcept : engine_(engine) {}
  Mailbox(const Mailbox&) = delete;
  Mailbox& operator=(const Mailbox&) = delete;

  /// Injects a message (called by the network at delivery time).  If a
  /// matching receiver is suspended, it is resumed at the current time.
  void deliver(Message message);

  /// Non-blocking probe-and-take, used for interrupt polling between loop
  /// iterations (the DLB_slave_sync check in the paper's Fig. 3).
  [[nodiscard]] std::optional<Message> try_receive(int tag = kAnyTag, int source = kAnySource);

  /// Non-blocking probe-and-take over a closed tag range.
  [[nodiscard]] std::optional<Message> try_receive_range(int tag_lo, int tag_hi,
                                                         int source = kAnySource);

  /// True iff a matching message is queued.
  [[nodiscard]] bool has_message(int tag = kAnyTag, int source = kAnySource) const noexcept;

  [[nodiscard]] std::size_t queued() const noexcept { return queue_.size(); }

  /// Resumes every suspended receiver empty-handed: deadline receives yield
  /// nullopt as if timed out (their deadline timers are cancelled); a plain
  /// `receive` waiter throws from await_resume.  Used by the fault layer to
  /// flush a crashed workstation's parked protocol coroutines — which by
  /// construction only ever park in deadline receives.
  void cancel_waiters();

  /// Awaitable receive.  Suspends until a matching message is delivered.
  [[nodiscard]] auto receive(int tag = kAnyTag, int source = kAnySource) {
    struct Awaiter {
      Mailbox& mailbox;
      int tag;
      int source;
      std::optional<Message> taken;

      bool await_ready() {
        taken = mailbox.try_receive(tag, source);
        return taken.has_value();
      }
      void await_suspend(std::coroutine_handle<> h) {
        const auto [lo, hi] = tag_bounds(tag);
        mailbox.waiters_.push_back(
            Waiter{lo, hi, source, h, &taken, mailbox.next_waiter_id_++, Engine::Timer{}});
      }
      Message await_resume() {
        if (!taken) throw std::logic_error("Mailbox: resumed without a message");
        return std::move(*taken);
      }
    };
    return Awaiter{*this, tag, source, std::nullopt};
  }

  /// Awaitable receive with a deadline: suspends until a message whose tag
  /// lies in [tag_lo, tag_hi] (and matches `source`) is delivered, or until
  /// absolute virtual time `deadline` passes — whichever comes first.  Yields
  /// the message, or nullopt on timeout.  The deadline timer is cancellable,
  /// so an early delivery leaves no residue that would stretch the run.
  [[nodiscard]] auto receive_until(SimTime deadline, int tag_lo, int tag_hi,
                                   int source = kAnySource) {
    struct Awaiter {
      Mailbox& mailbox;
      SimTime deadline;
      int tag_lo;
      int tag_hi;
      int source;
      std::optional<Message> taken;

      bool await_ready() {
        taken = mailbox.try_receive_range(tag_lo, tag_hi, source);
        return taken.has_value() || deadline <= mailbox.engine_.now();
      }
      void await_suspend(std::coroutine_handle<> h) {
        const std::uint64_t id = mailbox.next_waiter_id_++;
        Engine::Timer timer = mailbox.engine_.schedule_cancellable_at(
            deadline, [m = &mailbox, id] { m->expire_waiter(id); });
        mailbox.waiters_.push_back(Waiter{tag_lo, tag_hi, source, h, &taken, id, timer});
      }
      std::optional<Message> await_resume() { return std::move(taken); }
    };
    return Awaiter{*this, deadline, tag_lo, tag_hi, source, std::nullopt};
  }

 private:
  struct Waiter {
    int tag_lo;
    int tag_hi;
    int source;
    std::coroutine_handle<> handle;
    std::optional<Message>* slot;  // lives in the suspended coroutine frame
    std::uint64_t id;
    Engine::Timer timer;  // armed only for deadline receives
  };

  /// Maps a single-tag filter onto the range representation.
  static constexpr std::pair<int, int> tag_bounds(int tag) noexcept {
    return tag == kAnyTag ? std::pair{INT_MIN, INT_MAX} : std::pair{tag, tag};
  }

  static bool matches(const Message& m, int tag, int source) noexcept {
    return (tag == kAnyTag || m.tag == tag) && (source == kAnySource || m.source == source);
  }

  static bool matches_range(const Message& m, int tag_lo, int tag_hi, int source) noexcept {
    return m.tag >= tag_lo && m.tag <= tag_hi && (source == kAnySource || m.source == source);
  }

  /// Deadline-timer callback: resumes waiter `id` empty-handed.  No-op if the
  /// waiter was already served (the timer is then stale only when cancel
  /// raced — deliver cancels it, so normally this never fires after service).
  void expire_waiter(std::uint64_t id);

  Engine& engine_;
  support::RingBuffer<Message> queue_;
  support::RingBuffer<Waiter> waiters_;
  std::uint64_t next_waiter_id_ = 0;
};

}  // namespace dlb::sim
