#pragma once

#include <coroutine>
#include <cstddef>
#include <exception>
#include <utility>
#include <variant>

#include "sim/frame_arena.hpp"

namespace dlb::sim {

/// Lazy coroutine task with symmetric transfer, used for composing simulated
/// protocol steps (`co_await node.send(...)`, `co_await node.compute(...)`).
/// A Task starts suspended and runs when awaited; completion resumes the
/// awaiting coroutine directly (no scheduler round trip, no virtual-time
/// cost).  Exceptions thrown inside a task propagate out of `co_await`.
/// Frames are allocated from the thread-local FrameArena so the thousands of
/// short-lived protocol steps per run recycle a handful of blocks.
template <typename T>
class [[nodiscard]] Task {
 public:
  struct promise_type;
  using Handle = std::coroutine_handle<promise_type>;

  struct FinalAwaiter {
    bool await_ready() const noexcept { return false; }
    std::coroutine_handle<> await_suspend(Handle h) const noexcept {
      auto continuation = h.promise().continuation;
      return continuation ? continuation : std::noop_coroutine();
    }
    void await_resume() const noexcept {}
  };

  struct promise_type {
    std::coroutine_handle<> continuation;
    std::variant<std::monostate, T, std::exception_ptr> result;

    static void* operator new(std::size_t bytes) { return FrameArena::allocate(bytes); }
    static void operator delete(void* p) noexcept { FrameArena::deallocate(p); }

    Task get_return_object() { return Task(Handle::from_promise(*this)); }
    std::suspend_always initial_suspend() noexcept { return {}; }
    FinalAwaiter final_suspend() noexcept { return {}; }
    template <typename U>
    void return_value(U&& value) {
      result.template emplace<1>(std::forward<U>(value));
    }
    void unhandled_exception() { result.template emplace<2>(std::current_exception()); }
  };

  Task(Task&& other) noexcept : h_(std::exchange(other.h_, nullptr)) {}
  Task(const Task&) = delete;
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      h_ = std::exchange(other.h_, nullptr);
    }
    return *this;
  }
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> awaiting) noexcept {
    h_.promise().continuation = awaiting;
    return h_;
  }
  T await_resume() {
    auto& result = h_.promise().result;
    if (result.index() == 2) std::rethrow_exception(std::get<2>(result));
    return std::move(std::get<1>(result));
  }

 private:
  explicit Task(Handle h) noexcept : h_(h) {}
  void destroy() noexcept {
    if (h_) h_.destroy();
    h_ = nullptr;
  }
  Handle h_;
};

/// Void specialization.
template <>
class [[nodiscard]] Task<void> {
 public:
  struct promise_type;
  using Handle = std::coroutine_handle<promise_type>;

  struct FinalAwaiter {
    bool await_ready() const noexcept { return false; }
    std::coroutine_handle<> await_suspend(Handle h) const noexcept {
      auto continuation = h.promise().continuation;
      return continuation ? continuation : std::noop_coroutine();
    }
    void await_resume() const noexcept {}
  };

  struct promise_type {
    std::coroutine_handle<> continuation;
    std::exception_ptr exception;

    static void* operator new(std::size_t bytes) { return FrameArena::allocate(bytes); }
    static void operator delete(void* p) noexcept { FrameArena::deallocate(p); }

    Task get_return_object() { return Task(Handle::from_promise(*this)); }
    std::suspend_always initial_suspend() noexcept { return {}; }
    FinalAwaiter final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
    void unhandled_exception() { exception = std::current_exception(); }
  };

  Task(Task&& other) noexcept : h_(std::exchange(other.h_, nullptr)) {}
  Task(const Task&) = delete;
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      h_ = std::exchange(other.h_, nullptr);
    }
    return *this;
  }
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> awaiting) noexcept {
    h_.promise().continuation = awaiting;
    return h_;
  }
  void await_resume() {
    if (h_.promise().exception) std::rethrow_exception(h_.promise().exception);
  }

 private:
  explicit Task(Handle h) noexcept : h_(h) {}
  void destroy() noexcept {
    if (h_) h_.destroy();
    h_ = nullptr;
  }
  Handle h_;
};

}  // namespace dlb::sim
