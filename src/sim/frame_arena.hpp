#pragma once

#include <cstddef>
#include <cstdint>

namespace dlb::sim {

/// Thread-local slab allocator for coroutine frames.  The simulator creates
/// and destroys thousands of short-lived protocol coroutines per run
/// (`Task<T>` per send/receive/compute step, one `Process` per actor), and a
/// sweep runs thousands of engines per worker thread — so frames of the same
/// size recur constantly.  Promise types route `operator new/delete` here:
/// blocks are carved from 64 KiB slabs, bucketed into 64-byte size classes,
/// and recycled through per-class free lists.  Steady state performs no
/// heap allocation at all.
///
/// The arena is thread-local (engines never migrate threads mid-run, see the
/// Engine thread model), so no locking is needed and recycling composes with
/// exp::Pool workers, each of which warms its own arena on the first cell.
/// Frames larger than kMaxBlock fall back to ::operator new.
///
/// Sharded engines are the one place frames *do* migrate threads: a shard may
/// execute on a different pool worker every window.  For that case the engine
/// owns one private arena per shard (`Handle`) and rebinds the calling
/// thread's allocation target (`Bind`) for the duration of a shard's window,
/// so every frame of a shard lives in that shard's arena no matter which OS
/// thread runs the window.  Exactly one thread executes a given shard at a
/// time (the window barrier hands shards over with full synchronization), so
/// the arenas stay single-writer and lock-free.
class FrameArena {
 public:
  static void* allocate(std::size_t bytes);
  static void deallocate(void* p) noexcept;

  /// Owning handle to a private (non-thread-local) arena.  Destroying the
  /// handle releases the arena's slabs, so it must outlive every frame
  /// allocated under it.
  class Handle {
   public:
    Handle();
    ~Handle();
    Handle(Handle&& other) noexcept;
    Handle& operator=(Handle&& other) noexcept;
    Handle(const Handle&) = delete;
    Handle& operator=(const Handle&) = delete;

   private:
    friend class FrameArena;
    void* impl_;
  };

  /// RAII rebind: while alive, this thread's allocate/deallocate/stats target
  /// the handle's arena instead of the thread-local one.  Nests (restores the
  /// previous target), so an inner unsharded engine inside a shard window
  /// simply shares the shard's arena.
  class Bind {
   public:
    explicit Bind(Handle& handle) noexcept;
    ~Bind();
    Bind(const Bind&) = delete;
    Bind& operator=(const Bind&) = delete;

   private:
    void* prev_;
  };

  /// Counters for this thread's arena; used by tests to prove recycling.
  struct Stats {
    std::uint64_t fresh = 0;     ///< blocks carved fresh from a slab
    std::uint64_t reused = 0;    ///< free-list hits
    std::uint64_t oversize = 0;  ///< > kMaxBlock, served by ::operator new
    std::uint64_t live = 0;      ///< currently outstanding blocks
    std::uint64_t slabs = 0;     ///< slabs allocated so far
  };
  [[nodiscard]] static Stats stats() noexcept;

  static constexpr std::size_t kGranularity = 64;
  static constexpr std::size_t kMaxBlock = 2048;
  static constexpr std::size_t kSlabBytes = 64 * 1024;
};

}  // namespace dlb::sim
