#pragma once

#include <concepts>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/time.hpp"

namespace dlb::sim {

/// 32-byte POD queue record shared by every EventQueue implementation.
/// `payload` is either a CallNode* or the address of a coroutine handle,
/// discriminated by `is_call`.  Ordering is the strict total order
/// (at, seq): virtual time first, insertion sequence as the tie-break, so
/// any two queue implementations that respect it pop identical sequences.
struct Event {
  SimTime at;
  std::uint64_t seq;
  std::uintptr_t payload;
  bool is_call;
};

[[nodiscard]] inline bool earlier(const Event& a, const Event& b) noexcept {
  return a.at != b.at ? a.at < b.at : a.seq < b.seq;
}

namespace detail {

// 4-ary sift helpers shared by the reference heap and the calendar queue's
// epoch front: shallower than a binary heap and the four children of a node
// share a cache line of 32-byte records, so sift-down — the cost center of a
// pop-heavy discrete-event loop — touches fewer lines.
inline void heap4_push(std::vector<Event>& h, Event ev) noexcept {
  h.push_back(ev);
  std::size_t i = h.size() - 1;
  while (i > 0) {
    const std::size_t parent = (i - 1) / 4;
    if (!earlier(h[i], h[parent])) break;
    std::swap(h[i], h[parent]);
    i = parent;
  }
}

/// Removes the root (already read by the caller) and restores the heap.
inline void heap4_pop(std::vector<Event>& h) noexcept {
  const Event last = h.back();
  h.pop_back();
  const std::size_t n = h.size();
  if (n == 0) return;
  std::size_t i = 0;  // sift the former tail down from the root hole
  for (;;) {
    const std::size_t first = 4 * i + 1;
    if (first >= n) break;
    const std::size_t end = first + 4 < n ? first + 4 : n;
    std::size_t best = first;
    for (std::size_t c = first + 1; c < end; ++c) {
      if (earlier(h[c], h[best])) best = c;
    }
    if (!earlier(h[best], last)) break;
    h[i] = h[best];
    i = best;
  }
  h[i] = last;
}

}  // namespace detail

/// Reference event queue: one 4-ary min-heap on (at, seq).  O(log n) per
/// operation at any occupancy; kept as the oracle the calendar queue is
/// differential-tested against (tests/sim_queue_differential_test.cpp) and
/// selectable engine-wide with -DDLB_EVENT_QUEUE=heap.
class HeapEventQueue {
 public:
  static constexpr const char* kName = "heap";

  /// Never throws mid-run: the vector grows geometrically and allocation
  /// failure terminates rather than corrupting the (time, seq) contract.
  void push(Event ev) noexcept { detail::heap4_push(events_, ev); }

  /// Requires !empty().  The reference stays valid until the next mutation.
  [[nodiscard]] const Event& front() noexcept { return events_.front(); }

  void pop_front() noexcept { detail::heap4_pop(events_); }

  [[nodiscard]] bool empty() const noexcept { return events_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return events_.size(); }

  /// Visits every pending event in unspecified order (engine teardown).
  template <typename Fn>
  void visit_all(Fn&& fn) const {
    for (const Event& ev : events_) fn(ev);
  }

 private:
  std::vector<Event> events_;  // 4-ary min-heap on (at, seq)
};

/// Calendar-queue event core: O(1) amortized push/pop at high occupancy.
///
/// Layout (DESIGN.md §5.2): virtual time is divided into fixed-width *days*
/// (`width_` ns each); `nbuckets_` (a power of two) days make a *year*.  A
/// pending event lives in one of three disjoint time bands:
///
///   front_    — the current *epoch*: every event with at <= epoch_end_,
///               held in a small 4-ary heap so pops inside the epoch stay
///               strictly (at, seq)-ordered.
///   buckets_  — the calendar: epoch_end_ < at < horizon_, day-hashed by
///               (at / width_) mod nbuckets_; a bucket may hold events from
///               several years and is filtered by day window on extraction.
///   overflow_ — the ladder rung for far-future timers: at >= horizon_,
///               unsorted; re-seeded into a re-tuned calendar when the
///               buckets drain.
///
/// Popping drains the epoch heap; when it empties the next epoch is formed
/// by scanning days circularly from the floor of the calendar band and
/// extracting one day's events in bulk (the batched bucket drain).  A full
/// empty-year scan falls back to a direct min search and jumps, so sparse
/// queues cannot spin day by day.  New events inside the current epoch go
/// straight to the epoch heap; later events are routed by band.  Since the
/// three bands partition time and each hands over whole prefixes, the pop
/// sequence is exactly the (at, seq) order the reference heap produces.
///
/// Resize policy: the band is re-laid-out when its occupancy doubles (push
/// side) or halves (epoch side) relative to the last layout.  Each rebuild
/// re-tunes width_ — the median positive gap of a deterministic 64-event
/// stride sample, divided by the stride (the sample dilutes true density by
/// that factor), doubled, and rounded up to a power of two so day hashing is
/// a shift, not a 64-bit division — and then sizes the year to the band's
/// actual day span (16..2^14 buckets), so the header array tracks the time
/// spread rather than the event count and tie-dense narrow bands stay cache
/// resident.  Occupancy alone misses distribution drift at constant size, so
/// an epoch that extracts far more events than the tuned width predicts also
/// schedules a re-tune — rate-limited to one per full queue turnover, and
/// never at the 1 ns width floor, so tie-heavy workloads cannot thrash.
class CalendarEventQueue {
 public:
  static constexpr const char* kName = "calendar";

  CalendarEventQueue();

  /// Never throws mid-run: bucket growth is geometric and allocation failure
  /// terminates rather than corrupting the (time, seq) contract.
  void push(Event ev) noexcept;

  /// Requires !empty().  Forms the next epoch if the current one drained;
  /// the reference stays valid until the next mutation.
  [[nodiscard]] const Event& front() noexcept;

  void pop_front() noexcept;

  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  /// Visits every pending event in unspecified order (engine teardown).
  template <typename Fn>
  void visit_all(Fn&& fn) const {
    for (const Event& ev : front_) fn(ev);
    for (const std::vector<Event>& bucket : buckets_) {
      for (const Event& ev : bucket) fn(ev);
    }
    for (const Event& ev : overflow_) fn(ev);
  }

  /// Introspection for tests/benches: current day width and bucket count.
  [[nodiscard]] SimTime bucket_width() const noexcept { return width_; }
  [[nodiscard]] std::size_t bucket_count() const noexcept { return buckets_.size(); }

 private:
  [[nodiscard]] std::size_t day_of(SimTime at) const noexcept {
    return static_cast<std::size_t>(static_cast<std::uint64_t>(at) >> shift_);
  }

  void route(Event ev) noexcept;             // pre: ev.at > epoch_end_
  void form_epoch() noexcept;                // pre: front_ empty, size_ > 0
  bool extract_day(std::uint64_t day) noexcept;  // one day's window → front_
  void rebuild() noexcept;                   // re-derive width, buckets, horizon
  [[nodiscard]] SimTime tune_width() noexcept;  // from scratch_ contents

  std::vector<Event> front_;                 // epoch heap: at <= epoch_end_
  std::vector<std::vector<Event>> buckets_;  // epoch_end_ < at < horizon_
  std::vector<Event> overflow_;              // at >= horizon_
  std::vector<Event> scratch_;               // rebuild staging, capacity reused
  SimTime width_;                            // day width, a power of two >= 1
  std::uint32_t shift_;                      // log2(width_): day hash is a shift
  SimTime epoch_end_ = -1;                   // inclusive bound of front_
  SimTime horizon_;                          // calendar/overflow boundary
  std::size_t cal_count_ = 0;                // events in buckets_
  std::size_t size_ = 0;
  std::size_t grow_at_ = 32;                 // rebuild when cal_count_ exceeds
  std::size_t shrink_at_ = 0;                // rebuild when cal_count_ drops below
  std::size_t pops_since_rebuild_ = 0;       // re-tune rate limiter
  bool retune_pending_ = false;              // oversized epoch seen
};

template <typename Q>
concept EventQueueLike = requires(Q q, const Q cq, Event ev) {
  { q.push(ev) } noexcept;
  { q.front() } -> std::same_as<const Event&>;
  q.pop_front();
  { cq.empty() } -> std::convertible_to<bool>;
  { cq.size() } -> std::convertible_to<std::size_t>;
};

static_assert(EventQueueLike<HeapEventQueue>);
static_assert(EventQueueLike<CalendarEventQueue>);

/// Engine-wide selection, fixed at configure time (-DDLB_EVENT_QUEUE=heap
/// rebuilds every consumer against the reference heap; calendar is the
/// default).  A compile-time switch keeps the Engine facade monomorphic —
/// no per-event virtual dispatch — while the differential harness still
/// exercises both classes in one binary.
#if defined(DLB_EVENT_QUEUE_HEAP)
using EngineEventQueue = HeapEventQueue;
#else
using EngineEventQueue = CalendarEventQueue;
#endif

}  // namespace dlb::sim
