#pragma once

#include <cstdint>

namespace dlb::sim {

/// Virtual time in integer nanoseconds.  Integer time plus a per-event
/// sequence number gives bit-deterministic event ordering: two runs with the
/// same seed produce identical schedules on every platform, which the model
/// validation (paper Tables 1-2) depends on.
using SimTime = std::int64_t;

inline constexpr SimTime kNsPerUs = 1'000;
inline constexpr SimTime kNsPerMs = 1'000'000;
inline constexpr SimTime kNsPerSec = 1'000'000'000;

/// Sentinel meaning "never" / unbounded.
inline constexpr SimTime kTimeInfinity = INT64_MAX;

/// Converts seconds (double) to SimTime, rounding to the nearest nanosecond.
[[nodiscard]] constexpr SimTime from_seconds(double seconds) noexcept {
  const double ns = seconds * static_cast<double>(kNsPerSec);
  return static_cast<SimTime>(ns + (ns >= 0 ? 0.5 : -0.5));
}

[[nodiscard]] constexpr double to_seconds(SimTime t) noexcept {
  return static_cast<double>(t) / static_cast<double>(kNsPerSec);
}

[[nodiscard]] constexpr SimTime from_micros(double micros) noexcept {
  return from_seconds(micros * 1e-6);
}

}  // namespace dlb::sim
