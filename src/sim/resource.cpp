#include "sim/resource.hpp"

namespace dlb::sim {

void Resource::release() {
  if (in_use_ == 0) throw std::logic_error("Resource: release without acquire");
  --in_use_;
  if (!waiters_.empty() && in_use_ < capacity_) {
    ++in_use_;  // the unit is transferred to the waiter before it resumes
    const auto h = waiters_.pop_front();
    engine_.schedule_resume(engine_.now(), h);
  }
}

}  // namespace dlb::sim
