#pragma once

#include <coroutine>
#include <cstddef>
#include <exception>
#include <utility>

#include "sim/frame_arena.hpp"

namespace dlb::sim {

/// A root simulated process.  Unlike `Task`, a Process has no awaiter: it is
/// handed to `Engine::spawn`, which owns the frame, starts it as an event at
/// the current virtual time, and surfaces any escaped exception from
/// `Engine::run`.  All protocol actors (slaves, load balancers, the network
/// characterizer) are Processes.
///
/// The promise carries an intrusive live-list link plus a completion hook:
/// spawn() registers the frame with its engine, and final suspend notifies
/// the engine directly, so the run loop never scans for finished processes.
/// Frames are allocated from the thread-local FrameArena and recycled.
class [[nodiscard]] Process {
 public:
  struct promise_type;
  using Handle = std::coroutine_handle<promise_type>;

  struct promise_type {
    std::exception_ptr exception;
    /// Set by Engine::spawn.  Null while the Process is still owned by the
    /// caller (engine-less frames stay suspended at final_suspend and are
    /// destroyed by ~Process).
    void* engine = nullptr;
    void (*on_done)(void* engine, Handle h) noexcept = nullptr;
    /// Owning shard on a sharded engine (0 otherwise); set by Engine::spawn
    /// so the completion hook can unlink from the right live list.
    int shard = 0;
    promise_type* prev_live = nullptr;
    promise_type* next_live = nullptr;

    static void* operator new(std::size_t bytes) { return FrameArena::allocate(bytes); }
    static void operator delete(void* p) noexcept { FrameArena::deallocate(p); }

    Process get_return_object() { return Process(Handle::from_promise(*this)); }
    std::suspend_always initial_suspend() noexcept { return {}; }
    // At the end the frame either notifies its owning engine (which records
    // the exception, unlinks and destroys it) or stays suspended for the
    // owning Process object to destroy.
    struct FinalAwaiter {
      bool await_ready() const noexcept { return false; }
      void await_suspend(Handle h) const noexcept {
        auto& p = h.promise();
        if (p.engine != nullptr) p.on_done(p.engine, h);
      }
      void await_resume() const noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
    void unhandled_exception() { exception = std::current_exception(); }
  };

  Process(Process&& other) noexcept : h_(std::exchange(other.h_, nullptr)) {}
  Process(const Process&) = delete;
  Process& operator=(Process&& other) noexcept {
    if (this != &other) {
      destroy();
      h_ = std::exchange(other.h_, nullptr);
    }
    return *this;
  }
  Process& operator=(const Process&) = delete;
  ~Process() { destroy(); }

  [[nodiscard]] bool done() const noexcept { return !h_ || h_.done(); }

  /// Transfers frame ownership to the engine.
  [[nodiscard]] Handle release() noexcept { return std::exchange(h_, nullptr); }

 private:
  explicit Process(Handle h) noexcept : h_(h) {}
  void destroy() noexcept {
    if (h_) h_.destroy();
    h_ = nullptr;
  }
  Handle h_;
};

}  // namespace dlb::sim
