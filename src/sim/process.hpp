#pragma once

#include <coroutine>
#include <exception>
#include <utility>

namespace dlb::sim {

/// A root simulated process.  Unlike `Task`, a Process has no awaiter: it is
/// handed to `Engine::spawn`, which owns the frame, starts it as an event at
/// the current virtual time, and surfaces any escaped exception from
/// `Engine::run`.  All protocol actors (slaves, load balancers, the network
/// characterizer) are Processes.
class [[nodiscard]] Process {
 public:
  struct promise_type;
  using Handle = std::coroutine_handle<promise_type>;

  struct promise_type {
    std::exception_ptr exception;

    Process get_return_object() { return Process(Handle::from_promise(*this)); }
    std::suspend_always initial_suspend() noexcept { return {}; }
    // Suspend at the end so the engine can observe completion and reap the
    // frame; the engine destroys it.
    std::suspend_always final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
    void unhandled_exception() { exception = std::current_exception(); }
  };

  Process(Process&& other) noexcept : h_(std::exchange(other.h_, nullptr)) {}
  Process(const Process&) = delete;
  Process& operator=(Process&& other) noexcept {
    if (this != &other) {
      destroy();
      h_ = std::exchange(other.h_, nullptr);
    }
    return *this;
  }
  Process& operator=(const Process&) = delete;
  ~Process() { destroy(); }

  [[nodiscard]] bool done() const noexcept { return !h_ || h_.done(); }

  /// Transfers frame ownership to the engine.
  [[nodiscard]] Handle release() noexcept { return std::exchange(h_, nullptr); }

 private:
  explicit Process(Handle h) noexcept : h_(h) {}
  void destroy() noexcept {
    if (h_) h_.destroy();
    h_ = nullptr;
  }
  Handle h_;
};

}  // namespace dlb::sim
