#pragma once

#include <cstddef>
#include <functional>

namespace dlb::sim {

/// Executor a sharded Engine uses to run one window's shard tasks.  The
/// engine hands `count` independent tasks to `run_tasks` once per window;
/// the executor may run them on any threads in any order but must not
/// return before every task has finished — the return is the window
/// barrier, and the engine relies on it for the happens-before edge that
/// lets a shard migrate to a different worker next window.
///
/// The interface lives in sim so the engine stays free of any thread-pool
/// dependency; exp::Pool adapts itself to it (intra-cell shard workers and
/// cell-level workers then share one thread budget).
class ShardExecutor {
 public:
  virtual ~ShardExecutor() = default;
  virtual void run_tasks(std::size_t count,
                         const std::function<void(std::size_t)>& fn) = 0;
};

/// Default executor: runs the shard tasks serially on the calling thread.
/// The windowed schedule (and therefore the simulated outcome) is identical
/// to any parallel executor's — determinism by construction, checked by the
/// shard tests.
class InlineExecutor final : public ShardExecutor {
 public:
  void run_tasks(std::size_t count,
                 const std::function<void(std::size_t)>& fn) override {
    for (std::size_t i = 0; i < count; ++i) fn(i);
  }
};

}  // namespace dlb::sim
