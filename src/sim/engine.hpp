#pragma once

#include <coroutine>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <new>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/executor.hpp"
#include "sim/frame_arena.hpp"
#include "sim/process.hpp"
#include "sim/time.hpp"

namespace dlb::sim {

/// Discrete-event engine over virtual time.  Events are ordered by
/// (time, insertion sequence) so execution is deterministic.  Single-threaded
/// by design — "parallelism" is virtual, which is what lets the cost model be
/// validated against exact run traces.
///
/// Thread model: one Engine must only ever be driven from one thread, but
/// engines hold no global state, so *distinct* engines may run concurrently
/// on distinct threads (the exp::Runner executes one whole Engine per
/// experiment cell).  Virtual time never resets: an engine (and any Cluster
/// built around it) is single-run — `now() != 0 || events_executed() != 0`
/// marks it consumed, which core::Runtime checks at construction.
///
/// Hot-path representation: the queue is an EventQueueLike container of
/// 32-byte POD event records — by default the calendar queue (O(1) amortized
/// push/pop at high occupancy, same-day events drained as one batched
/// epoch), or the reference 4-ary heap when configured with
/// -DDLB_EVENT_QUEUE=heap.  Both implementations pop the identical strict
/// (at, seq) order, so the selection cannot change any simulated outcome
/// (tests/sim_queue_differential_test.cpp holds them to that).  A coroutine
/// resume (the dominant event kind — every sleep, mailbox delivery and
/// spawn) stores the bare handle in the record; an arbitrary `schedule_at`
/// callable lives in a per-engine pooled CallNode with a 64-byte inline
/// buffer (larger captures spill to the heap, once, inside the node).  Nodes
/// are recycled through a free list, so the steady state of a run performs
/// no allocation per event.
///
/// Sharded mode (`configure_shards`): the engine splits into S shards, each
/// owning its own event queue, CallNode pool, frame arena and live-process
/// list, and replaces the single run loop with a conservatively synchronized
/// window loop.  Each round takes W = min over all shard queue fronts, runs
/// every shard up to (but excluding) W + lookahead in parallel via a
/// ShardExecutor, then merges cross-shard traffic at the barrier.  The
/// lookahead is the minimum virtual latency of any cross-shard interaction
/// (the switched network's cut-through latency), so an event generated inside
/// a window can never target the same window on another shard — execution is
/// deterministic by construction and bit-identical for any shard-to-worker
/// assignment.  Cross-shard events carry a caller-supplied canonical key in
/// place of the insertion sequence (bit 63 set, so they order after every
/// same-time shard-local event); because both the key and the timestamp are
/// derived from per-source deterministic state, the pop order — and therefore
/// the simulation outcome — is also independent of the shard count.
/// `configure_shards(1, …)` leaves the engine on the unsharded code path,
/// which is untouched byte for byte.
class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;
  ~Engine();

  [[nodiscard]] SimTime now() const noexcept { return shards_.empty() ? now_ : sharded_now(); }

  /// Schedules an arbitrary callback at absolute virtual time `at`
  /// (clamped to `now()` if in the past).
  template <typename Fn>
  void schedule_at(SimTime at, Fn&& fn) {
    static_assert(std::is_invocable_r_v<void, std::decay_t<Fn>&>,
                  "schedule_at callable must be invocable as void()");
    CallNode* node = acquire_call_node();
    try {
      construct_call(node, std::forward<Fn>(fn));
    } catch (...) {
      release_call_node(node);
      throw;
    }
    push_call_event(at, node);
  }

 private:
  struct CallNode;

  template <typename Fn>
  void construct_call(CallNode* node, Fn&& fn) {
    using Decayed = std::decay_t<Fn>;
    if constexpr (sizeof(Decayed) <= CallNode::kInlineBytes &&
                  alignof(Decayed) <= alignof(std::max_align_t)) {
      ::new (static_cast<void*>(node->storage)) Decayed(std::forward<Fn>(fn));
      node->run = [](CallNode& n) {
        auto* f = std::launder(reinterpret_cast<Decayed*>(n.storage));
        struct Destroy {
          Decayed* f;
          ~Destroy() { f->~Decayed(); }
        } d{f};
        (*f)();
      };
      node->drop = [](CallNode& n) noexcept {
        std::launder(reinterpret_cast<Decayed*>(n.storage))->~Decayed();
      };
    } else {
      // Rare spill: captures wider than the inline buffer get one heap box.
      ::new (static_cast<void*>(node->storage))
          // dlblint:allow(hotpath-alloc) sanctioned spill path for oversized captures
          Decayed*(new Decayed(std::forward<Fn>(fn)));
      node->run = [](CallNode& n) {
        auto* f = *std::launder(reinterpret_cast<Decayed**>(n.storage));
        struct Destroy {
          Decayed* f;
          // dlblint:allow(hotpath-alloc) frees the spill box created above
          ~Destroy() { delete f; }
        } d{f};
        (*f)();
      };
      node->drop = [](CallNode& n) noexcept {
        // dlblint:allow(hotpath-alloc) frees the spill box created above
        delete *std::launder(reinterpret_cast<Decayed**>(n.storage));
      };
    }
  }

 public:
  /// Handle to a `schedule_cancellable_at` callback.  Generation-checked:
  /// once the callback fires (or is cancelled) the handle goes stale and
  /// further `cancel` calls are safe no-ops, even after the underlying node
  /// has been recycled for another callback.
  class [[nodiscard]] Timer {
   public:
    Timer() = default;

   private:
    friend class Engine;
    CallNode* node_ = nullptr;
    std::uint64_t gen_ = 0;
  };

  /// Like `schedule_at`, but returns a handle that can cancel the callback
  /// before it fires.  A cancelled callback is destroyed unrun and — unlike
  /// scheduling a no-op — virtual time never advances to its deadline: the
  /// queued record is discarded when it reaches the heap root, so a run whose
  /// real work ends earlier is not stretched by dead timers.
  template <typename Fn>
  [[nodiscard]] Timer schedule_cancellable_at(SimTime at, Fn&& fn) {
    CallNode* node = acquire_call_node();
    try {
      construct_call(node, std::forward<Fn>(fn));
    } catch (...) {
      release_call_node(node);
      throw;
    }
    push_call_event(at, node);
    Timer timer;
    timer.node_ = node;
    timer.gen_ = node->gen;
    return timer;
  }

  /// Cancels a pending cancellable callback; no-op on a stale handle.
  /// In a sharded engine a timer may only be cancelled from the shard that
  /// scheduled it (all protocol actors cancel their own timers, so this
  /// holds by construction).
  void cancel(Timer& timer) noexcept {
    CallNode* node = timer.node_;
    timer.node_ = nullptr;
    if (node != nullptr && node->gen == timer.gen_) node->cancelled = true;
  }

  /// Schedules a coroutine resume at absolute virtual time `at`.  This is
  /// the fast path: the record holds the bare handle, no callable is built.
  /// Never throws mid-run: the queue grows geometrically and allocation
  /// failure terminates rather than corrupting the (time, seq) contract.
  void schedule_resume(SimTime at, std::coroutine_handle<> h) noexcept {
    if (shards_.empty()) {
      push_event(Event{at < now_ ? now_ : at, next_seq_++,
                       reinterpret_cast<std::uintptr_t>(h.address()), false});
      return;
    }
    sharded_schedule_resume(at, h);
  }

  /// Starts a root process as an event at the current time.  The engine owns
  /// the frame; exceptions escaping the process are re-thrown from run().
  /// On a sharded engine the caller must hold a ShardScope (or be inside a
  /// shard window), which pins the process to that shard.
  void spawn(Process p);

  /// Runs until the event queue drains.  Returns the final virtual time.
  SimTime run();

  /// Runs until the queue drains or virtual time would exceed `deadline`;
  /// events after the deadline remain queued.
  SimTime run_until(SimTime deadline);

  // ── Sharding ──────────────────────────────────────────────────────────

  /// Splits the engine into `shards` independently queued partitions
  /// synchronized on `lookahead` (the minimum virtual latency of any
  /// cross-shard event; must be positive).  Must be called before anything
  /// is spawned or scheduled.  `shards == 1` is a no-op: the engine stays on
  /// the legacy unsharded path.
  void configure_shards(int shards, SimTime lookahead);

  /// Number of shards (1 when unsharded).
  [[nodiscard]] int shards() const noexcept {
    return shards_.empty() ? 1 : static_cast<int>(shards_.size());
  }
  [[nodiscard]] bool is_sharded() const noexcept { return !shards_.empty(); }
  /// The conservative synchronization lookahead (0 when unsharded).
  [[nodiscard]] SimTime lookahead() const noexcept { return lookahead_; }

  /// Installs the executor that runs shard window tasks; nullptr restores
  /// the built-in inline (serial) executor.  The executor choice cannot
  /// change the simulated outcome — only wall-clock time.
  void set_executor(ShardExecutor* executor) noexcept { executor_ = executor; }

  /// RAII shard context: while alive, spawns and schedules from this thread
  /// are routed to `shard` (and coroutine frames are allocated in that
  /// shard's arena).  No-op on an unsharded engine.  Used at setup time to
  /// pin each root process to its rack's shard; the window loop establishes
  /// the same context internally while a shard executes.
  class ShardScope {
   public:
    ShardScope(Engine& engine, int shard);
    ~ShardScope();
    ShardScope(const ShardScope&) = delete;
    ShardScope& operator=(const ShardScope&) = delete;

   private:
    Engine* prev_engine_;
    int prev_shard_;
    std::optional<FrameArena::Bind> bind_;
  };

  /// Schedules a cross-shard (or cross-rack) event with a caller-supplied
  /// canonical sequence key instead of the per-shard insertion counter.
  /// `key` must have bit 63 set, be unique per event, and — like `at` — be
  /// derived only from per-source deterministic state, so the resulting pop
  /// order is independent of the shard count.  `at` must be at least
  /// `now() + lookahead()`; this is what makes the conservative window sound.
  /// On an unsharded engine the event simply joins the single queue (bit 63
  /// orders it after every same-time normal event, exactly as it would be on
  /// its destination shard).  This is the *only* legal channel for
  /// cross-shard interaction — dlblint's shard-isolation rule enforces that
  /// nothing outside src/sim + src/net touches it.
  template <typename Fn>
  void schedule_ingress(int dst_shard, SimTime at, std::uint64_t key, Fn&& fn) {
    static_assert(std::is_invocable_r_v<void, std::decay_t<Fn>&>,
                  "schedule_ingress callable must be invocable as void()");
    if (shards_.empty()) {
      CallNode* node = acquire_call_node();
      try {
        construct_call(node, std::forward<Fn>(fn));
      } catch (...) {
        release_call_node(node);
        throw;
      }
      push_event(Event{at < now_ ? now_ : at, key, reinterpret_cast<std::uintptr_t>(node), true});
      return;
    }
    Shard& src = ctx_shard();
    Shard& dst = *shards_[static_cast<std::size_t>(dst_shard)];
    if (&src == &dst) {
      CallNode* node = acquire_call_node();
      try {
        construct_call(node, std::forward<Fn>(fn));
      } catch (...) {
        release_call_node(node);
        throw;
      }
      src.push(Event{at < src.now ? src.now : at, key,
                     reinterpret_cast<std::uintptr_t>(node), true});
      return;
    }
    // Cross-shard: park in the source's outbox; the window barrier moves it
    // into the destination queue with the same canonical (at, key).
    src.outbox[static_cast<std::size_t>(dst_shard)].push_back(
        Ingress{at, key, std::function<void()>(std::forward<Fn>(fn))});
  }

  /// Events executed by one shard (shard 0 = the whole engine when
  /// unsharded).  The max over shards bounds the critical path of a window
  /// schedule, which the scale bench uses as its deterministic speedup proxy.
  [[nodiscard]] std::size_t shard_events_executed(int shard) const;

  /// Awaitable for sleep_for/sleep_until: suspends the awaiting coroutine
  /// until `wake_at` (no-op if already past).
  struct [[nodiscard]] SleepAwaiter {
    Engine& engine;
    SimTime wake_at;
    bool await_ready() const noexcept { return wake_at <= engine.now(); }
    void await_suspend(std::coroutine_handle<> h) const noexcept {
      engine.schedule_resume(wake_at, h);
    }
    void await_resume() const noexcept {}
  };

  /// Awaitable: suspends the awaiting coroutine for `duration` virtual ns.
  [[nodiscard]] SleepAwaiter sleep_for(SimTime duration) noexcept {
    const SimTime base = now();
    return SleepAwaiter{*this, duration <= 0 ? base : base + duration};
  }

  /// Awaitable: suspends until absolute virtual time `at` (no-op if past).
  [[nodiscard]] SleepAwaiter sleep_until(SimTime at) noexcept {
    return SleepAwaiter{*this, at};
  }

  [[nodiscard]] std::size_t events_executed() const noexcept {
    return shards_.empty() ? events_executed_ : sharded_events_executed();
  }
  [[nodiscard]] bool empty() const noexcept {
    return shards_.empty() ? events_.empty() : sharded_empty();
  }

  /// Name of the compile-time-selected event queue ("calendar" or "heap").
  [[nodiscard]] static constexpr const char* event_queue_name() noexcept {
    return EngineEventQueue::kName;
  }

  /// Current number of queued events (observability: sampled as the
  /// "heap depth" counter track of a Chrome trace).
  [[nodiscard]] std::size_t queue_depth() const noexcept {
    return shards_.empty() ? events_.size() : sharded_queue_depth();
  }
  /// High-water mark of the event queue over the engine's lifetime (summed
  /// over shards when sharded).
  [[nodiscard]] std::size_t peak_queue_depth() const noexcept {
    return shards_.empty() ? peak_queue_depth_ : sharded_peak_queue_depth();
  }

 private:
  /// Pooled holder for a type-erased `schedule_at` callable.  Chunk-allocated
  /// by the engine and recycled through `free_calls_`; `run`/`drop` own the
  /// lifetime of the stored callable.
  struct CallNode {
    static constexpr std::size_t kInlineBytes = 64;
    alignas(std::max_align_t) unsigned char storage[kInlineBytes];
    void (*run)(CallNode&);            // invoke, then destroy the callable
    void (*drop)(CallNode&) noexcept;  // destroy without invoking (teardown)
    CallNode* next_free;
    std::uint64_t gen;  // bumped on recycle; validates Timer handles
    bool cancelled;     // set by Engine::cancel; record skipped at heap root
  };

  /// A cross-shard event parked in its source shard's outbox until the
  /// window barrier.
  struct Ingress {
    SimTime at;
    std::uint64_t key;
    std::function<void()> fn;
  };

  /// One conservative-synchronization partition: a full private copy of the
  /// engine's run state.  Exactly one thread executes a shard per window
  /// (the executor barrier hands shards over with full synchronization), so
  /// nothing here needs locking.
  struct Shard {
    EngineEventQueue events;
    std::vector<std::unique_ptr<CallNode[]>> call_chunks;
    CallNode* free_calls = nullptr;
    Process::promise_type* live_head = nullptr;
    std::exception_ptr pending;
    SimTime now = 0;
    std::uint64_t next_seq = 0;
    std::size_t events_executed = 0;
    std::size_t peak_queue_depth = 0;
    std::vector<std::vector<Ingress>> outbox;  // indexed by destination shard
    FrameArena::Handle arena;

    void push(Event ev) noexcept {
      events.push(ev);
      if (events.size() > peak_queue_depth) peak_queue_depth = events.size();
    }
  };

  [[nodiscard]] CallNode* acquire_call_node();
  void release_call_node(CallNode* node) noexcept;
  void push_call_event(SimTime at, CallNode* node) noexcept;

  [[nodiscard]] static CallNode* pool_acquire(std::vector<std::unique_ptr<CallNode[]>>& chunks,
                                              CallNode*& free_list);
  static void pool_release(CallNode*& free_list, CallNode* node) noexcept;

  // Inline: sits directly in every awaiter's suspend path.
  void push_event(Event ev) noexcept {
    events_.push(ev);
    if (events_.size() > peak_queue_depth_) peak_queue_depth_ = events_.size();
  }

  void dispatch(const Event& ev);
  static void process_done_hook(void* engine, Process::Handle h) noexcept;
  void on_process_done(Process::Handle h) noexcept;

  // Sharded-mode slow paths (the inline entry points branch on
  // `shards_.empty()` first, so the legacy hot path stays unchanged).
  [[nodiscard]] Shard& ctx_shard() noexcept;
  void sharded_schedule_resume(SimTime at, std::coroutine_handle<> h) noexcept;
  [[nodiscard]] SimTime sharded_now() const noexcept;
  [[nodiscard]] std::size_t sharded_events_executed() const noexcept;
  [[nodiscard]] bool sharded_empty() const noexcept;
  [[nodiscard]] std::size_t sharded_queue_depth() const noexcept;
  [[nodiscard]] std::size_t sharded_peak_queue_depth() const noexcept;
  SimTime run_sharded(SimTime deadline);
  void run_window(std::size_t shard, SimTime end);

  EngineEventQueue events_;  // strict (at, seq) pop order
  std::vector<std::unique_ptr<CallNode[]>> call_chunks_;
  CallNode* free_calls_ = nullptr;
  Process::promise_type* live_head_ = nullptr;  // intrusive list of root frames
  std::exception_ptr pending_;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::size_t events_executed_ = 0;
  std::size_t peak_queue_depth_ = 0;

  std::vector<std::unique_ptr<Shard>> shards_;  // empty = unsharded
  SimTime lookahead_ = 0;
  ShardExecutor* executor_ = nullptr;  // null = inline_executor_
  InlineExecutor inline_executor_;
};

}  // namespace dlb::sim
