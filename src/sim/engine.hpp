#pragma once

#include <coroutine>
#include <cstdint>
#include <functional>
#include <vector>

#include "sim/process.hpp"
#include "sim/time.hpp"

namespace dlb::sim {

/// Discrete-event engine over virtual time.  Events are ordered by
/// (time, insertion sequence) so execution is deterministic.  Single-threaded
/// by design — "parallelism" is virtual, which is what lets the cost model be
/// validated against exact run traces.
///
/// Thread model: one Engine must only ever be driven from one thread, but
/// engines hold no global state, so *distinct* engines may run concurrently
/// on distinct threads (the exp::Runner executes one whole Engine per
/// experiment cell).  Virtual time never resets: an engine (and any Cluster
/// built around it) is single-run — `now() != 0 || events_executed() != 0`
/// marks it consumed, which core::Runtime checks at construction.
class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;
  ~Engine();

  [[nodiscard]] SimTime now() const noexcept { return now_; }

  /// Schedules an arbitrary callback at absolute virtual time `at`
  /// (clamped to `now()` if in the past).
  void schedule_at(SimTime at, std::function<void()> fn);

  /// Schedules a coroutine resume at absolute virtual time `at`.
  void schedule_resume(SimTime at, std::coroutine_handle<> h);

  /// Starts a root process as an event at the current time.  The engine owns
  /// the frame; exceptions escaping the process are re-thrown from run().
  void spawn(Process p);

  /// Runs until the event queue drains.  Returns the final virtual time.
  SimTime run();

  /// Runs until the queue drains or virtual time would exceed `deadline`;
  /// events after the deadline remain queued.
  SimTime run_until(SimTime deadline);

  /// Awaitable: suspends the awaiting coroutine for `duration` virtual ns.
  [[nodiscard]] auto sleep_for(SimTime duration) {
    struct Awaiter {
      Engine& engine;
      SimTime wake_at;
      bool await_ready() const noexcept { return wake_at <= engine.now(); }
      void await_suspend(std::coroutine_handle<> h) const { engine.schedule_resume(wake_at, h); }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this, duration <= 0 ? now_ : now_ + duration};
  }

  /// Awaitable: suspends until absolute virtual time `at` (no-op if past).
  [[nodiscard]] auto sleep_until(SimTime at) {
    struct Awaiter {
      Engine& engine;
      SimTime wake_at;
      bool await_ready() const noexcept { return wake_at <= engine.now(); }
      void await_suspend(std::coroutine_handle<> h) const { engine.schedule_resume(wake_at, h); }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this, at};
  }

  [[nodiscard]] std::size_t events_executed() const noexcept { return events_executed_; }
  [[nodiscard]] bool empty() const noexcept { return events_.empty(); }

 private:
  struct Event {
    SimTime at;
    std::uint64_t seq;
    std::function<void()> fn;
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const noexcept {
      return a.at != b.at ? a.at > b.at : a.seq > b.seq;
    }
  };

  void reap_and_check_processes();

  std::vector<Event> events_;  // binary min-heap via std::push_heap/pop_heap
  std::vector<Process::Handle> processes_;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::size_t events_executed_ = 0;
};

}  // namespace dlb::sim
