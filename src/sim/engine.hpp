#pragma once

#include <coroutine>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/process.hpp"
#include "sim/time.hpp"

namespace dlb::sim {

/// Discrete-event engine over virtual time.  Events are ordered by
/// (time, insertion sequence) so execution is deterministic.  Single-threaded
/// by design — "parallelism" is virtual, which is what lets the cost model be
/// validated against exact run traces.
///
/// Thread model: one Engine must only ever be driven from one thread, but
/// engines hold no global state, so *distinct* engines may run concurrently
/// on distinct threads (the exp::Runner executes one whole Engine per
/// experiment cell).  Virtual time never resets: an engine (and any Cluster
/// built around it) is single-run — `now() != 0 || events_executed() != 0`
/// marks it consumed, which core::Runtime checks at construction.
///
/// Hot-path representation: the queue is an EventQueueLike container of
/// 32-byte POD event records — by default the calendar queue (O(1) amortized
/// push/pop at high occupancy, same-day events drained as one batched
/// epoch), or the reference 4-ary heap when configured with
/// -DDLB_EVENT_QUEUE=heap.  Both implementations pop the identical strict
/// (at, seq) order, so the selection cannot change any simulated outcome
/// (tests/sim_queue_differential_test.cpp holds them to that).  A coroutine
/// resume (the dominant event kind — every sleep, mailbox delivery and
/// spawn) stores the bare handle in the record; an arbitrary `schedule_at`
/// callable lives in a per-engine pooled CallNode with a 64-byte inline
/// buffer (larger captures spill to the heap, once, inside the node).  Nodes
/// are recycled through a free list, so the steady state of a run performs
/// no allocation per event.
class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;
  ~Engine();

  [[nodiscard]] SimTime now() const noexcept { return now_; }

  /// Schedules an arbitrary callback at absolute virtual time `at`
  /// (clamped to `now()` if in the past).
  template <typename Fn>
  void schedule_at(SimTime at, Fn&& fn) {
    static_assert(std::is_invocable_r_v<void, std::decay_t<Fn>&>,
                  "schedule_at callable must be invocable as void()");
    CallNode* node = acquire_call_node();
    try {
      construct_call(node, std::forward<Fn>(fn));
    } catch (...) {
      release_call_node(node);
      throw;
    }
    push_call_event(at, node);
  }

 private:
  struct CallNode;

  template <typename Fn>
  void construct_call(CallNode* node, Fn&& fn) {
    using Decayed = std::decay_t<Fn>;
    if constexpr (sizeof(Decayed) <= CallNode::kInlineBytes &&
                  alignof(Decayed) <= alignof(std::max_align_t)) {
      ::new (static_cast<void*>(node->storage)) Decayed(std::forward<Fn>(fn));
      node->run = [](CallNode& n) {
        auto* f = std::launder(reinterpret_cast<Decayed*>(n.storage));
        struct Destroy {
          Decayed* f;
          ~Destroy() { f->~Decayed(); }
        } d{f};
        (*f)();
      };
      node->drop = [](CallNode& n) noexcept {
        std::launder(reinterpret_cast<Decayed*>(n.storage))->~Decayed();
      };
    } else {
      // Rare spill: captures wider than the inline buffer get one heap box.
      ::new (static_cast<void*>(node->storage))
          // dlblint:allow(hotpath-alloc) sanctioned spill path for oversized captures
          Decayed*(new Decayed(std::forward<Fn>(fn)));
      node->run = [](CallNode& n) {
        auto* f = *std::launder(reinterpret_cast<Decayed**>(n.storage));
        struct Destroy {
          Decayed* f;
          // dlblint:allow(hotpath-alloc) frees the spill box created above
          ~Destroy() { delete f; }
        } d{f};
        (*f)();
      };
      node->drop = [](CallNode& n) noexcept {
        // dlblint:allow(hotpath-alloc) frees the spill box created above
        delete *std::launder(reinterpret_cast<Decayed**>(n.storage));
      };
    }
  }

 public:
  /// Handle to a `schedule_cancellable_at` callback.  Generation-checked:
  /// once the callback fires (or is cancelled) the handle goes stale and
  /// further `cancel` calls are safe no-ops, even after the underlying node
  /// has been recycled for another callback.
  class [[nodiscard]] Timer {
   public:
    Timer() = default;

   private:
    friend class Engine;
    CallNode* node_ = nullptr;
    std::uint64_t gen_ = 0;
  };

  /// Like `schedule_at`, but returns a handle that can cancel the callback
  /// before it fires.  A cancelled callback is destroyed unrun and — unlike
  /// scheduling a no-op — virtual time never advances to its deadline: the
  /// queued record is discarded when it reaches the heap root, so a run whose
  /// real work ends earlier is not stretched by dead timers.
  template <typename Fn>
  [[nodiscard]] Timer schedule_cancellable_at(SimTime at, Fn&& fn) {
    CallNode* node = acquire_call_node();
    try {
      construct_call(node, std::forward<Fn>(fn));
    } catch (...) {
      release_call_node(node);
      throw;
    }
    push_call_event(at, node);
    Timer timer;
    timer.node_ = node;
    timer.gen_ = node->gen;
    return timer;
  }

  /// Cancels a pending cancellable callback; no-op on a stale handle.
  void cancel(Timer& timer) noexcept {
    CallNode* node = timer.node_;
    timer.node_ = nullptr;
    if (node != nullptr && node->gen == timer.gen_) node->cancelled = true;
  }

  /// Schedules a coroutine resume at absolute virtual time `at`.  This is
  /// the fast path: the record holds the bare handle, no callable is built.
  /// Never throws mid-run: the queue grows geometrically and allocation
  /// failure terminates rather than corrupting the (time, seq) contract.
  void schedule_resume(SimTime at, std::coroutine_handle<> h) noexcept {
    push_event(Event{at < now_ ? now_ : at, next_seq_++,
                     reinterpret_cast<std::uintptr_t>(h.address()), false});
  }

  /// Starts a root process as an event at the current time.  The engine owns
  /// the frame; exceptions escaping the process are re-thrown from run().
  void spawn(Process p);

  /// Runs until the event queue drains.  Returns the final virtual time.
  SimTime run();

  /// Runs until the queue drains or virtual time would exceed `deadline`;
  /// events after the deadline remain queued.
  SimTime run_until(SimTime deadline);

  /// Awaitable for sleep_for/sleep_until: suspends the awaiting coroutine
  /// until `wake_at` (no-op if already past).
  struct [[nodiscard]] SleepAwaiter {
    Engine& engine;
    SimTime wake_at;
    bool await_ready() const noexcept { return wake_at <= engine.now(); }
    void await_suspend(std::coroutine_handle<> h) const noexcept {
      engine.schedule_resume(wake_at, h);
    }
    void await_resume() const noexcept {}
  };

  /// Awaitable: suspends the awaiting coroutine for `duration` virtual ns.
  [[nodiscard]] SleepAwaiter sleep_for(SimTime duration) noexcept {
    return SleepAwaiter{*this, duration <= 0 ? now_ : now_ + duration};
  }

  /// Awaitable: suspends until absolute virtual time `at` (no-op if past).
  [[nodiscard]] SleepAwaiter sleep_until(SimTime at) noexcept {
    return SleepAwaiter{*this, at};
  }

  [[nodiscard]] std::size_t events_executed() const noexcept { return events_executed_; }
  [[nodiscard]] bool empty() const noexcept { return events_.empty(); }

  /// Name of the compile-time-selected event queue ("calendar" or "heap").
  [[nodiscard]] static constexpr const char* event_queue_name() noexcept {
    return EngineEventQueue::kName;
  }

  /// Current number of queued events (observability: sampled as the
  /// "heap depth" counter track of a Chrome trace).
  [[nodiscard]] std::size_t queue_depth() const noexcept { return events_.size(); }
  /// High-water mark of the event queue over the engine's lifetime.
  [[nodiscard]] std::size_t peak_queue_depth() const noexcept { return peak_queue_depth_; }

 private:
  /// Pooled holder for a type-erased `schedule_at` callable.  Chunk-allocated
  /// by the engine and recycled through `free_calls_`; `run`/`drop` own the
  /// lifetime of the stored callable.
  struct CallNode {
    static constexpr std::size_t kInlineBytes = 64;
    alignas(std::max_align_t) unsigned char storage[kInlineBytes];
    void (*run)(CallNode&);            // invoke, then destroy the callable
    void (*drop)(CallNode&) noexcept;  // destroy without invoking (teardown)
    CallNode* next_free;
    std::uint64_t gen;  // bumped on recycle; validates Timer handles
    bool cancelled;     // set by Engine::cancel; record skipped at heap root
  };

  [[nodiscard]] CallNode* acquire_call_node();
  void release_call_node(CallNode* node) noexcept;
  void push_call_event(SimTime at, CallNode* node) noexcept;

  // Inline: sits directly in every awaiter's suspend path.
  void push_event(Event ev) noexcept {
    events_.push(ev);
    if (events_.size() > peak_queue_depth_) peak_queue_depth_ = events_.size();
  }

  void dispatch(const Event& ev);
  static void process_done_hook(void* engine, Process::Handle h) noexcept;
  void on_process_done(Process::Handle h) noexcept;

  EngineEventQueue events_;  // strict (at, seq) pop order
  std::vector<std::unique_ptr<CallNode[]>> call_chunks_;
  CallNode* free_calls_ = nullptr;
  Process::promise_type* live_head_ = nullptr;  // intrusive list of root frames
  std::exception_ptr pending_;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::size_t events_executed_ = 0;
  std::size_t peak_queue_depth_ = 0;
};

}  // namespace dlb::sim
