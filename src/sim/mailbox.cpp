#include "sim/mailbox.hpp"

namespace dlb::sim {

void Mailbox::deliver(Message message) {
  message.delivered_at = engine_.now();
  // Serve the oldest suspended waiter whose filter matches.
  for (auto it = waiters_.begin(); it != waiters_.end(); ++it) {
    if (matches(message, it->tag, it->source)) {
      const Waiter waiter = *it;
      waiters_.erase(it);
      *waiter.slot = std::move(message);
      // Resume via the scheduler (not inline) so delivery cascades cannot
      // recurse arbitrarily deep and ordering stays (time, seq) determined.
      engine_.schedule_resume(engine_.now(), waiter.handle);
      return;
    }
  }
  queue_.push_back(std::move(message));
}

std::optional<Message> Mailbox::try_receive(int tag, int source) {
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (matches(*it, tag, source)) {
      Message m = std::move(*it);
      queue_.erase(it);
      return m;
    }
  }
  return std::nullopt;
}

bool Mailbox::has_message(int tag, int source) const noexcept {
  for (const auto& m : queue_) {
    if (matches(m, tag, source)) return true;
  }
  return false;
}

}  // namespace dlb::sim
