#include "sim/mailbox.hpp"

namespace dlb::sim {

void Mailbox::deliver(Message message) {
  message.delivered_at = engine_.now();
  // Serve the oldest suspended waiter whose filter matches.
  for (std::size_t i = 0; i < waiters_.size(); ++i) {
    if (matches_range(message, waiters_[i].tag_lo, waiters_[i].tag_hi, waiters_[i].source)) {
      Waiter waiter = waiters_.take(i);
      engine_.cancel(waiter.timer);  // no-op for plain receives
      *waiter.slot = std::move(message);
      // Resume via the scheduler (not inline) so delivery cascades cannot
      // recurse arbitrarily deep and ordering stays (time, seq) determined.
      engine_.schedule_resume(engine_.now(), waiter.handle);
      return;
    }
  }
  queue_.push_back(std::move(message));
}

std::optional<Message> Mailbox::try_receive(int tag, int source) {
  for (std::size_t i = 0; i < queue_.size(); ++i) {
    if (matches(queue_[i], tag, source)) return queue_.take(i);
  }
  return std::nullopt;
}

std::optional<Message> Mailbox::try_receive_range(int tag_lo, int tag_hi, int source) {
  for (std::size_t i = 0; i < queue_.size(); ++i) {
    if (matches_range(queue_[i], tag_lo, tag_hi, source)) return queue_.take(i);
  }
  return std::nullopt;
}

bool Mailbox::has_message(int tag, int source) const noexcept {
  for (std::size_t i = 0; i < queue_.size(); ++i) {
    if (matches(queue_[i], tag, source)) return true;
  }
  return false;
}

void Mailbox::cancel_waiters() {
  while (waiters_.size() > 0) {
    Waiter waiter = waiters_.take(0);
    engine_.cancel(waiter.timer);
    // Slot stays empty: deadline receives see a timeout, plain receives
    // throw.  Resume through the scheduler like any other wake-up.
    engine_.schedule_resume(engine_.now(), waiter.handle);
  }
}

void Mailbox::expire_waiter(std::uint64_t id) {
  for (std::size_t i = 0; i < waiters_.size(); ++i) {
    if (waiters_[i].id == id) {
      const Waiter waiter = waiters_.take(i);
      engine_.schedule_resume(engine_.now(), waiter.handle);
      return;
    }
  }
}

}  // namespace dlb::sim
