#include "sim/mailbox.hpp"

namespace dlb::sim {

void Mailbox::deliver(Message message) {
  message.delivered_at = engine_.now();
  // Serve the oldest suspended waiter whose filter matches.
  for (std::size_t i = 0; i < waiters_.size(); ++i) {
    if (matches(message, waiters_[i].tag, waiters_[i].source)) {
      const Waiter waiter = waiters_.take(i);
      *waiter.slot = std::move(message);
      // Resume via the scheduler (not inline) so delivery cascades cannot
      // recurse arbitrarily deep and ordering stays (time, seq) determined.
      engine_.schedule_resume(engine_.now(), waiter.handle);
      return;
    }
  }
  queue_.push_back(std::move(message));
}

std::optional<Message> Mailbox::try_receive(int tag, int source) {
  for (std::size_t i = 0; i < queue_.size(); ++i) {
    if (matches(queue_[i], tag, source)) return queue_.take(i);
  }
  return std::nullopt;
}

bool Mailbox::has_message(int tag, int source) const noexcept {
  for (std::size_t i = 0; i < queue_.size(); ++i) {
    if (matches(queue_[i], tag, source)) return true;
  }
  return false;
}

}  // namespace dlb::sim
