#include "sim/frame_arena.hpp"

#include <new>
#include <vector>

namespace dlb::sim {

namespace {

// Every block is prefixed by a 16-byte header holding its size class, so
// deallocate() needs no size argument (coroutine frame deallocation is not
// guaranteed to be sized on every compiler).  16 bytes keeps the payload
// aligned for std::max_align_t on all mainstream ABIs.
struct alignas(16) Header {
  std::uint32_t cls;  // size-class index, or kOversize
  std::uint32_t pad[3];
};
static_assert(sizeof(Header) == 16);

constexpr std::uint32_t kOversize = 0xffffffffu;
constexpr std::size_t kNumClasses = FrameArena::kMaxBlock / FrameArena::kGranularity;

struct ThreadArena {
  std::vector<void*> slabs;
  unsigned char* bump = nullptr;
  std::size_t remaining = 0;
  void* free_lists[kNumClasses] = {};
  FrameArena::Stats stats;

  ~ThreadArena() {
    for (void* s : slabs) ::operator delete(s);
  }

  void* allocate(std::size_t bytes) {
    const std::size_t total =
        (bytes + sizeof(Header) + FrameArena::kGranularity - 1) / FrameArena::kGranularity *
        FrameArena::kGranularity;
    ++stats.live;
    if (total > FrameArena::kMaxBlock) {
      ++stats.oversize;
      auto* block = static_cast<unsigned char*>(::operator new(total));
      reinterpret_cast<Header*>(block)->cls = kOversize;
      return block + sizeof(Header);
    }
    const std::size_t cls = total / FrameArena::kGranularity - 1;
    if (void* head = free_lists[cls]) {
      ++stats.reused;
      free_lists[cls] = *static_cast<void**>(head);
      auto* block = static_cast<unsigned char*>(head);
      reinterpret_cast<Header*>(block)->cls = static_cast<std::uint32_t>(cls);
      return block + sizeof(Header);
    }
    ++stats.fresh;
    if (remaining < total) {
      bump = static_cast<unsigned char*>(::operator new(FrameArena::kSlabBytes));
      slabs.push_back(bump);
      remaining = FrameArena::kSlabBytes;
      ++stats.slabs;
    }
    auto* block = bump;
    bump += total;
    remaining -= total;
    reinterpret_cast<Header*>(block)->cls = static_cast<std::uint32_t>(cls);
    return block + sizeof(Header);
  }

  void deallocate(void* p) noexcept {
    auto* block = static_cast<unsigned char*>(p) - sizeof(Header);
    const std::uint32_t cls = reinterpret_cast<Header*>(block)->cls;
    --stats.live;
    if (cls == kOversize) {
      ::operator delete(block);
      return;
    }
    *reinterpret_cast<void**>(block) = free_lists[cls];
    free_lists[cls] = block;
  }
};

thread_local ThreadArena t_arena;
// Allocation target: the thread's own arena by default; a FrameArena::Bind
// temporarily retargets it at an engine-shard arena.
thread_local ThreadArena* t_target = nullptr;

ThreadArena& target() noexcept { return t_target != nullptr ? *t_target : t_arena; }

}  // namespace

void* FrameArena::allocate(std::size_t bytes) { return target().allocate(bytes); }

void FrameArena::deallocate(void* p) noexcept { target().deallocate(p); }

FrameArena::Stats FrameArena::stats() noexcept { return target().stats; }

// dlblint:allow(hotpath-alloc) one arena per engine shard, created at configure time
FrameArena::Handle::Handle() : impl_(new ThreadArena) {}

// dlblint:allow(hotpath-alloc) releases the configure-time arena
FrameArena::Handle::~Handle() { delete static_cast<ThreadArena*>(impl_); }

FrameArena::Handle::Handle(Handle&& other) noexcept : impl_(other.impl_) {
  other.impl_ = nullptr;
}

FrameArena::Handle& FrameArena::Handle::operator=(Handle&& other) noexcept {
  if (this != &other) {
    // dlblint:allow(hotpath-alloc) releases the configure-time arena
    delete static_cast<ThreadArena*>(impl_);
    impl_ = other.impl_;
    other.impl_ = nullptr;
  }
  return *this;
}

FrameArena::Bind::Bind(Handle& handle) noexcept : prev_(t_target) {
  t_target = static_cast<ThreadArena*>(handle.impl_);
}

FrameArena::Bind::~Bind() { t_target = static_cast<ThreadArena*>(prev_); }

}  // namespace dlb::sim
