#include "support/cli.hpp"

#include <cstdlib>

namespace dlb::support {

Cli::Cli(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      const auto eq = arg.find('=');
      if (eq == std::string::npos) {
        options_[arg.substr(2)] = "1";
      } else {
        options_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
      }
    } else {
      positional_.push_back(arg);
    }
  }
}

bool Cli::has(const std::string& key) const { return options_.count(key) != 0; }

std::string Cli::get(const std::string& key, const std::string& fallback) const {
  const auto it = options_.find(key);
  return it == options_.end() ? fallback : it->second;
}

long Cli::get_int(const std::string& key, long fallback) const {
  const auto it = options_.find(key);
  return it == options_.end() ? fallback : std::strtol(it->second.c_str(), nullptr, 10);
}

double Cli::get_double(const std::string& key, double fallback) const {
  const auto it = options_.find(key);
  return it == options_.end() ? fallback : std::strtod(it->second.c_str(), nullptr);
}

}  // namespace dlb::support
