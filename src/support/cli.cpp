#include "support/cli.hpp"

#include <cerrno>
#include <cstdlib>
#include <stdexcept>

namespace dlb::support {

namespace {

[[noreturn]] void bad_number(const std::string& key, const std::string& value,
                             const char* kind) {
  throw std::invalid_argument("--" + key + "=" + value + ": not a valid " + kind);
}

}  // namespace

Cli::Cli(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      const auto eq = arg.find('=');
      if (eq == std::string::npos) {
        options_[arg.substr(2)] = "1";
      } else {
        options_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
      }
    } else {
      positional_.push_back(arg);
    }
  }
}

bool Cli::has(const std::string& key) const { return options_.count(key) != 0; }

std::string Cli::get(const std::string& key, const std::string& fallback) const {
  const auto it = options_.find(key);
  return it == options_.end() ? fallback : it->second;
}

long Cli::get_int(const std::string& key, long fallback) const {
  const auto it = options_.find(key);
  if (it == options_.end()) return fallback;
  const std::string& value = it->second;
  // strtol with an unchecked end pointer accepted "4x" as 4 and "x" as 0;
  // require the full string to be consumed and non-empty.
  errno = 0;
  char* end = nullptr;
  const long parsed = std::strtol(value.c_str(), &end, 10);
  if (value.empty() || end != value.c_str() + value.size() || errno == ERANGE) {
    bad_number(key, value, "integer");
  }
  return parsed;
}

double Cli::get_double(const std::string& key, double fallback) const {
  const auto it = options_.find(key);
  if (it == options_.end()) return fallback;
  const std::string& value = it->second;
  errno = 0;
  char* end = nullptr;
  const double parsed = std::strtod(value.c_str(), &end);
  if (value.empty() || end != value.c_str() + value.size() || errno == ERANGE) {
    bad_number(key, value, "number");
  }
  return parsed;
}

void Cli::reject_unknown(const std::vector<std::string>& known) const {
  for (const auto& [key, value] : options_) {
    bool ok = false;
    for (const auto& k : known) {
      if (key == k) {
        ok = true;
        break;
      }
    }
    if (!ok) throw std::invalid_argument("unknown option --" + key);
  }
}

}  // namespace dlb::support
