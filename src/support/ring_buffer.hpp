#pragma once

#include <cstddef>
#include <utility>
#include <vector>

namespace dlb::support {

/// Order-preserving FIFO over a power-of-two circular array, with indexed
/// access and middle removal.  Replaces std::deque in the simulator's
/// delivery paths: a deque allocates a map node per block and churns them as
/// the queue breathes, whereas this buffer reaches a steady state after
/// warm-up and then performs no allocation per element.  `take()` removes an
/// element at an arbitrary logical index (tag/source-filtered receives) by
/// shifting whichever side of the buffer is shorter.
///
/// T must be default-constructible and move-assignable; vacated slots keep a
/// moved-from T (cheap hollow objects for all simulator message types).
template <typename T>
class RingBuffer {
 public:
  RingBuffer() = default;

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  [[nodiscard]] T& operator[](std::size_t i) noexcept { return slots_[slot(i)]; }
  [[nodiscard]] const T& operator[](std::size_t i) const noexcept { return slots_[slot(i)]; }
  [[nodiscard]] T& front() noexcept { return slots_[head_]; }

  void push_back(T value) {
    if (size_ == slots_.size()) grow();
    slots_[slot(size_)] = std::move(value);
    ++size_;
  }

  [[nodiscard]] T pop_front() {
    T out = std::move(slots_[head_]);
    head_ = (head_ + 1) & (slots_.size() - 1);
    --size_;
    return out;
  }

  /// Removes and returns element `i`, preserving the relative order of the
  /// rest.  Shifts the shorter side, so head/tail removals are O(1).
  [[nodiscard]] T take(std::size_t i) {
    T out = std::move((*this)[i]);
    if (i < size_ - 1 - i) {
      for (std::size_t k = i; k > 0; --k) (*this)[k] = std::move((*this)[k - 1]);
      head_ = (head_ + 1) & (slots_.size() - 1);
    } else {
      for (std::size_t k = i; k + 1 < size_; ++k) (*this)[k] = std::move((*this)[k + 1]);
    }
    --size_;
    return out;
  }

 private:
  [[nodiscard]] std::size_t slot(std::size_t i) const noexcept {
    return (head_ + i) & (slots_.size() - 1);
  }

  void grow() {
    const std::size_t capacity = slots_.empty() ? 16 : slots_.size() * 2;
    std::vector<T> fresh(capacity);
    for (std::size_t k = 0; k < size_; ++k) fresh[k] = std::move((*this)[k]);
    slots_ = std::move(fresh);
    head_ = 0;
  }

  std::vector<T> slots_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace dlb::support
