#include "support/csv.hpp"

#include <ostream>

namespace dlb::support {

namespace {

// Appends `cell` to `out`, quoting only when required — same contract as
// csv_escape but without materializing a temporary string per cell.
void append_escaped(std::string& out, const std::string& cell) {
  if (cell.find_first_of(",\"\n\r") == std::string::npos) {
    out += cell;
    return;
  }
  out.push_back('"');
  for (char ch : cell) {
    if (ch == '"') out.push_back('"');
    out.push_back(ch);
  }
  out.push_back('"');
}

}  // namespace

std::string csv_escape(const std::string& cell) {
  const bool needs_quotes = cell.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return cell;
  std::string out;
  out.reserve(cell.size() + 2);
  append_escaped(out, cell);
  return out;
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  row_buf_.clear();
  std::size_t upper = cells.size() + 1;  // separators + newline
  for (const auto& cell : cells) upper += cell.size();
  row_buf_.reserve(upper);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i != 0) row_buf_.push_back(',');
    append_escaped(row_buf_, cells[i]);
  }
  row_buf_.push_back('\n');
  os_ << row_buf_;
}

}  // namespace dlb::support
