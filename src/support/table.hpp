#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace dlb::support {

/// Aligned ASCII table writer used by the benchmark harnesses to print the
/// paper-style rows (Figs. 5-8, Tables 1-2).  Cells are strings; numeric
/// formatting is done by the caller (see `fmt_fixed`).
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);
  /// Inserts a horizontal rule before the next added row.
  void add_rule();

  /// Renders with column alignment and `|` separators.
  void print(std::ostream& os) const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;  // empty vector encodes a rule
};

/// Fixed-point formatting helper ("%.3f"-style) without <format> dependence.
[[nodiscard]] std::string fmt_fixed(double value, int decimals);

/// Scientific-ish compact formatting for wide-ranging values.
[[nodiscard]] std::string fmt_sig(double value, int significant);

}  // namespace dlb::support
