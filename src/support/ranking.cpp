#include "support/ranking.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace dlb::support {

namespace {

std::vector<int> positions_of(std::span<const int> order) {
  int max_id = -1;
  for (int id : order) max_id = std::max(max_id, id);
  std::vector<int> pos(static_cast<std::size_t>(max_id) + 1, -1);
  for (std::size_t i = 0; i < order.size(); ++i) {
    const int id = order[i];
    if (id < 0 || pos[static_cast<std::size_t>(id)] != -1) {
      throw std::invalid_argument("ranking: ordering is not a permutation");
    }
    pos[static_cast<std::size_t>(id)] = static_cast<int>(i);
  }
  return pos;
}

}  // namespace

double kendall_tau(std::span<const int> order_a, std::span<const int> order_b) {
  if (order_a.size() != order_b.size()) throw std::invalid_argument("ranking: size mismatch");
  const std::size_t n = order_a.size();
  if (n < 2) return 1.0;
  const auto pos_b = positions_of(order_b);
  // Verify b covers exactly a's ids.
  for (int id : order_a) {
    if (id < 0 || static_cast<std::size_t>(id) >= pos_b.size() ||
        pos_b[static_cast<std::size_t>(id)] == -1) {
      throw std::invalid_argument("ranking: orderings cover different ids");
    }
  }
  long long concordant = 0;
  long long discordant = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const int bi = pos_b[static_cast<std::size_t>(order_a[i])];
      const int bj = pos_b[static_cast<std::size_t>(order_a[j])];
      if (bi < bj) {
        ++concordant;
      } else {
        ++discordant;
      }
    }
  }
  const auto pairs = static_cast<double>(n * (n - 1) / 2);
  return static_cast<double>(concordant - discordant) / pairs;
}

bool exact_match(std::span<const int> order_a, std::span<const int> order_b) {
  return order_a.size() == order_b.size() && std::equal(order_a.begin(), order_a.end(), order_b.begin());
}

int positions_matched(std::span<const int> order_a, std::span<const int> order_b) {
  if (order_a.size() != order_b.size()) throw std::invalid_argument("ranking: size mismatch");
  int matched = 0;
  for (std::size_t i = 0; i < order_a.size(); ++i) {
    if (order_a[i] == order_b[i]) ++matched;
  }
  return matched;
}

std::vector<int> rank_by_cost(std::span<const double> costs) {
  std::vector<int> idx(costs.size());
  std::iota(idx.begin(), idx.end(), 0);
  std::stable_sort(idx.begin(), idx.end(), [&](int a, int b) {
    return costs[static_cast<std::size_t>(a)] < costs[static_cast<std::size_t>(b)];
  });
  return idx;
}

std::string format_order(std::span<const int> order, std::span<const std::string> labels) {
  std::string out;
  for (std::size_t i = 0; i < order.size(); ++i) {
    if (i != 0) out += ' ';
    out += labels[static_cast<std::size_t>(order[i])];
  }
  return out;
}

}  // namespace dlb::support
