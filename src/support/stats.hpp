#pragma once

#include <cstddef>
#include <span>

namespace dlb::support {

/// Summary statistics over a sample (used when averaging runs across seeds).
struct Summary {
  double mean = 0.0;
  double stdev = 0.0;  // sample standard deviation (n-1), 0 for n < 2
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
  std::size_t count = 0;
};

[[nodiscard]] Summary summarize(std::span<const double> samples);

[[nodiscard]] double mean_of(std::span<const double> samples);

}  // namespace dlb::support
