#pragma once

#include <cstddef>
#include <span>

namespace dlb::support {

/// Summary statistics over a sample (used when averaging runs across seeds).
struct Summary {
  double mean = 0.0;
  double stdev = 0.0;  // sample standard deviation (n-1), 0 for n < 2
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
  std::size_t count = 0;
};

[[nodiscard]] Summary summarize(std::span<const double> samples);

[[nodiscard]] double mean_of(std::span<const double> samples);

/// Exact nearest-rank percentile: the value at ascending rank ceil(q * n)
/// for q in (0, 1].  Always an actual sample (never an interpolation), so
/// the reported p50/p99/p999 are bit-identical wherever the sample multiset
/// is identical — the SLA determinism guarantee of service mode.  Partially
/// reorders `samples` in place (nth_element); requires a non-empty span.
[[nodiscard]] double percentile_nearest_rank(std::span<double> samples, double q);

}  // namespace dlb::support
