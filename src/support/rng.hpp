#pragma once

#include <cstdint>
#include <limits>

namespace dlb::support {

/// Deterministic, seedable PRNG (xoshiro256**), independent of the standard
/// library's unspecified distributions so results are identical across
/// platforms and compilers.  Every stochastic component of the system (the
/// external-load generator above all) draws from one of these, seeded from a
/// user-provided root seed, so a whole cluster run is reproducible bit-for-bit.
class Rng {
 public:
  /// Seeds the four-word state from a single 64-bit seed via splitmix64.
  explicit Rng(std::uint64_t seed) noexcept;

  /// Next raw 64-bit draw.
  std::uint64_t next() noexcept;

  /// Uniform integer in [lo, hi], inclusive.  Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform double in [0, 1).
  double uniform01() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Derives an independent stream: mixes this generator's seed lineage with
  /// `stream_id`.  Used to give each workstation its own load stream from one
  /// root seed.
  [[nodiscard]] Rng fork(std::uint64_t stream_id) const noexcept;

 private:
  std::uint64_t s_[4];
  std::uint64_t seed_lineage_;
};

/// splitmix64 step — used for seeding and stream derivation.
std::uint64_t splitmix64(std::uint64_t& state) noexcept;

}  // namespace dlb::support
