#include "support/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace dlb::support {

Summary summarize(std::span<const double> samples) {
  if (samples.empty()) throw std::invalid_argument("summarize: empty sample");
  Summary s;
  s.count = samples.size();
  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  s.min = sorted.front();
  s.max = sorted.back();
  const std::size_t n = sorted.size();
  s.median = (n % 2 == 1) ? sorted[n / 2] : 0.5 * (sorted[n / 2 - 1] + sorted[n / 2]);
  double total = 0.0;
  for (double v : sorted) total += v;
  s.mean = total / static_cast<double>(n);
  if (n >= 2) {
    double ss = 0.0;
    for (double v : sorted) {
      const double d = v - s.mean;
      ss += d * d;
    }
    s.stdev = std::sqrt(ss / static_cast<double>(n - 1));
  }
  return s;
}

double mean_of(std::span<const double> samples) { return summarize(samples).mean; }

double percentile_nearest_rank(std::span<double> samples, double q) {
  if (samples.empty()) throw std::invalid_argument("percentile_nearest_rank: empty sample");
  if (!(q > 0.0) || !(q <= 1.0)) {
    throw std::invalid_argument("percentile_nearest_rank: q must be in (0, 1]");
  }
  const auto n = samples.size();
  const double exact = q * static_cast<double>(n);
  std::size_t rank = static_cast<std::size_t>(std::ceil(exact));
  if (rank < 1) rank = 1;
  if (rank > n) rank = n;
  auto nth = samples.begin() + static_cast<std::ptrdiff_t>(rank - 1);
  std::nth_element(samples.begin(), nth, samples.end());
  return *nth;
}

}  // namespace dlb::support
