#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace dlb::support {

/// A fitted polynomial c0 + c1 x + ... + cd x^d.
class Polynomial {
 public:
  Polynomial() = default;
  explicit Polynomial(std::vector<double> coefficients) : coeffs_(std::move(coefficients)) {}

  [[nodiscard]] double operator()(double x) const noexcept;
  [[nodiscard]] std::size_t degree() const noexcept { return coeffs_.empty() ? 0 : coeffs_.size() - 1; }
  [[nodiscard]] const std::vector<double>& coefficients() const noexcept { return coeffs_; }

 private:
  std::vector<double> coeffs_;
};

/// Least-squares fit of a degree-`degree` polynomial through (x, y) samples,
/// solved via the normal equations with partial-pivot Gaussian elimination.
/// This mirrors the paper's §6.1 off-line network characterization, where the
/// measured one-to-all / all-to-one / all-to-all costs are "polyfit" into cost
/// functions used by the model.
///
/// Requires x.size() == y.size() and x.size() >= degree + 1.
/// Throws std::invalid_argument on malformed input.
[[nodiscard]] Polynomial polyfit(std::span<const double> x, std::span<const double> y,
                                 std::size_t degree);

/// Solves A x = b in place (A is n x n row-major).  Partial pivoting.
/// Throws std::runtime_error if the system is singular.
[[nodiscard]] std::vector<double> solve_linear(std::vector<double> a, std::vector<double> b);

/// Coefficient of determination (R^2) of a fit against samples.
[[nodiscard]] double r_squared(const Polynomial& p, std::span<const double> x,
                               std::span<const double> y);

}  // namespace dlb::support
