#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace dlb::support {

/// Minimal CSV writer for exporting benchmark series (one file per figure so
/// plots can be regenerated outside the repo).  Handles quoting of cells that
/// contain separators, quotes, or newlines.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& os) : os_(os) {}

  void write_row(const std::vector<std::string>& cells);

 private:
  std::ostream& os_;
  // Each row is assembled here and inserted into the stream in one shot;
  // the capacity is reused across rows so steady-state writes don't allocate.
  std::string row_buf_;
};

[[nodiscard]] std::string csv_escape(const std::string& cell);

}  // namespace dlb::support
