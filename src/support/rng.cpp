#include "support/rng.hpp"

namespace dlb::support {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) noexcept : seed_lineage_(seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next());  // full 64-bit range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit =
      std::numeric_limits<std::uint64_t>::max() - (std::numeric_limits<std::uint64_t>::max() % span);
  std::uint64_t draw = next();
  while (draw >= limit) draw = next();
  return lo + static_cast<std::int64_t>(draw % span);
}

double Rng::uniform01() noexcept {
  // 53 high bits -> [0,1) double.
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform01();
}

Rng Rng::fork(std::uint64_t stream_id) const noexcept {
  std::uint64_t sm = seed_lineage_;
  const std::uint64_t mixed = splitmix64(sm) ^ (0x2545f4914f6cdd1dULL * (stream_id + 1));
  return Rng(mixed);
}

}  // namespace dlb::support
