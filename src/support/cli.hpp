#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace dlb::support {

/// Tiny `--key=value` / `--flag` argument parser shared by the examples and
/// benchmark binaries.  Unrecognized positional arguments are kept in order.
class Cli {
 public:
  Cli(int argc, const char* const* argv);

  [[nodiscard]] bool has(const std::string& key) const;
  [[nodiscard]] std::string get(const std::string& key, const std::string& fallback) const;
  [[nodiscard]] long get_int(const std::string& key, long fallback) const;
  [[nodiscard]] double get_double(const std::string& key, double fallback) const;

  [[nodiscard]] const std::vector<std::string>& positional() const noexcept { return positional_; }

 private:
  std::map<std::string, std::string> options_;
  std::vector<std::string> positional_;
};

}  // namespace dlb::support
