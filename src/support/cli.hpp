#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace dlb::support {

/// Tiny `--key=value` / `--flag` argument parser shared by the examples and
/// benchmark binaries.  Unrecognized positional arguments are kept in order.
///
/// Numeric accessors parse strictly: the whole value must be a valid number
/// (`--procs=4x` or `--tl=fast` throw std::invalid_argument instead of
/// silently reading 0, which used to turn a typo into a zero-processor
/// grid).  A bare `--flag` stores "1", so `has`/`get_int` agree on flags.
class Cli {
 public:
  Cli(int argc, const char* const* argv);

  [[nodiscard]] bool has(const std::string& key) const;
  [[nodiscard]] std::string get(const std::string& key, const std::string& fallback) const;
  [[nodiscard]] long get_int(const std::string& key, long fallback) const;
  [[nodiscard]] double get_double(const std::string& key, double fallback) const;

  [[nodiscard]] const std::vector<std::string>& positional() const noexcept { return positional_; }

  /// Throws std::invalid_argument if any parsed `--option` is not in
  /// `known` — so `--thraeds=4` fails loudly instead of being ignored.
  /// Call after all flags are known; binaries with open-ended flag sets
  /// simply never call it.
  void reject_unknown(const std::vector<std::string>& known) const;

 private:
  std::map<std::string, std::string> options_;
  std::vector<std::string> positional_;
};

}  // namespace dlb::support
