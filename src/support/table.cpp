#include "support/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <stdexcept>

namespace dlb::support {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) throw std::invalid_argument("Table: empty header");
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != header_.size()) throw std::invalid_argument("Table: row width mismatch");
  rows_.push_back(std::move(cells));
}

void Table::add_rule() { rows_.emplace_back(); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());
  }

  auto print_rule = [&] {
    os << '+';
    for (std::size_t c = 0; c < width.size(); ++c) {
      for (std::size_t i = 0; i < width[c] + 2; ++i) os << '-';
      os << '+';
    }
    os << '\n';
  };
  auto print_cells = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < width.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string{};
      os << ' ' << cell;
      for (std::size_t i = cell.size(); i < width[c] + 1; ++i) os << ' ';
      os << '|';
    }
    os << '\n';
  };

  print_rule();
  print_cells(header_);
  print_rule();
  for (const auto& row : rows_) {
    if (row.empty()) {
      print_rule();
    } else {
      print_cells(row);
    }
  }
  print_rule();
}

std::string fmt_fixed(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

std::string fmt_sig(double value, int significant) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", significant, value);
  return buf;
}

}  // namespace dlb::support
