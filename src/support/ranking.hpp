#pragma once

#include <span>
#include <string>
#include <vector>

namespace dlb::support {

/// Rank-agreement metrics used to score the model's predicted strategy order
/// against the measured order (paper Tables 1 and 2 report the two orders side
/// by side; we additionally quantify how close they are).

/// Kendall tau-a between two orderings of the same item set.  Each vector
/// lists item ids best-first.  Returns a value in [-1, 1].
/// Throws std::invalid_argument if the vectors are not permutations of the
/// same ids.
[[nodiscard]] double kendall_tau(std::span<const int> order_a, std::span<const int> order_b);

/// True iff both orderings are identical.
[[nodiscard]] bool exact_match(std::span<const int> order_a, std::span<const int> order_b);

/// Number of positions at which the orderings agree.
[[nodiscard]] int positions_matched(std::span<const int> order_a, std::span<const int> order_b);

/// Sorts item indices best-first by ascending cost, breaking ties by index so
/// output is deterministic.
[[nodiscard]] std::vector<int> rank_by_cost(std::span<const double> costs);

/// Joins labels of an ordering for table cells, e.g. "GD GC LD LC".
[[nodiscard]] std::string format_order(std::span<const int> order,
                                       std::span<const std::string> labels);

}  // namespace dlb::support
