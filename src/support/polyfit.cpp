#include "support/polyfit.hpp"

#include <cmath>
#include <stdexcept>

namespace dlb::support {

double Polynomial::operator()(double x) const noexcept {
  double acc = 0.0;
  for (std::size_t i = coeffs_.size(); i-- > 0;) acc = acc * x + coeffs_[i];
  return acc;
}

std::vector<double> solve_linear(std::vector<double> a, std::vector<double> b) {
  const std::size_t n = b.size();
  if (a.size() != n * n) throw std::invalid_argument("solve_linear: dimension mismatch");

  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivot: largest magnitude in this column at or below the diagonal.
    std::size_t pivot = col;
    for (std::size_t row = col + 1; row < n; ++row) {
      if (std::abs(a[row * n + col]) > std::abs(a[pivot * n + col])) pivot = row;
    }
    if (std::abs(a[pivot * n + col]) < 1e-14) throw std::runtime_error("solve_linear: singular system");
    if (pivot != col) {
      for (std::size_t k = 0; k < n; ++k) std::swap(a[col * n + k], a[pivot * n + k]);
      std::swap(b[col], b[pivot]);
    }
    for (std::size_t row = col + 1; row < n; ++row) {
      const double factor = a[row * n + col] / a[col * n + col];
      if (factor == 0.0) continue;
      for (std::size_t k = col; k < n; ++k) a[row * n + k] -= factor * a[col * n + k];
      b[row] -= factor * b[col];
    }
  }

  std::vector<double> x(n, 0.0);
  for (std::size_t row = n; row-- > 0;) {
    double acc = b[row];
    for (std::size_t k = row + 1; k < n; ++k) acc -= a[row * n + k] * x[k];
    x[row] = acc / a[row * n + row];
  }
  return x;
}

Polynomial polyfit(std::span<const double> x, std::span<const double> y, std::size_t degree) {
  if (x.size() != y.size()) throw std::invalid_argument("polyfit: x/y size mismatch");
  const std::size_t n = degree + 1;
  if (x.size() < n) throw std::invalid_argument("polyfit: not enough samples for degree");

  // Normal equations: (V^T V) c = V^T y with Vandermonde V.
  std::vector<double> ata(n * n, 0.0);
  std::vector<double> aty(n, 0.0);
  for (std::size_t s = 0; s < x.size(); ++s) {
    std::vector<double> powers(2 * n - 1, 1.0);
    for (std::size_t p = 1; p < powers.size(); ++p) powers[p] = powers[p - 1] * x[s];
    for (std::size_t i = 0; i < n; ++i) {
      aty[i] += powers[i] * y[s];
      for (std::size_t j = 0; j < n; ++j) ata[i * n + j] += powers[i + j];
    }
  }
  return Polynomial(solve_linear(std::move(ata), std::move(aty)));
}

double r_squared(const Polynomial& p, std::span<const double> x, std::span<const double> y) {
  if (x.empty() || x.size() != y.size()) throw std::invalid_argument("r_squared: bad samples");
  double mean = 0.0;
  for (double v : y) mean += v;
  mean /= static_cast<double>(y.size());
  double ss_res = 0.0;
  double ss_tot = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double r = y[i] - p(x[i]);
    ss_res += r * r;
    const double d = y[i] - mean;
    ss_tot += d * d;
  }
  if (ss_tot == 0.0) return ss_res == 0.0 ? 1.0 : 0.0;
  return 1.0 - ss_res / ss_tot;
}

}  // namespace dlb::support
