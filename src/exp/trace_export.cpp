#include "exp/trace_export.hpp"

#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "core/ft_protocol.hpp"
#include "core/protocol.hpp"
#include "obs/chrome_trace.hpp"

namespace dlb::exp {

namespace {

const char* ft_offset_name(int offset) noexcept {
  switch (offset) {
    case core::kFtOffInterrupt:
      return "ft interrupt";
    case core::kFtOffOutcome:
      return "ft outcome";
    case core::kFtOffWork:
      return "ft work";
    case core::kFtOffAck:
      return "ft ack";
    case core::kFtOffHeartbeat:
      return "ft heartbeat";
    case core::kFtOffProfile:
      return "ft profile";
  }
  return nullptr;
}

/// Keeps [a-zA-Z0-9.-] and folds every other run of characters to one '-',
/// so "mxm[R=400,C=400,R2=400]" becomes "mxm-R-400-C-400-R2-400".
std::string sanitize(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  bool pending_dash = false;
  for (const char c : s) {
    if (std::isalnum(static_cast<unsigned char>(c)) || c == '.' || c == '-') {
      if (pending_dash && !out.empty()) out += '-';
      pending_dash = false;
      out += c;
    } else {
      pending_dash = true;
    }
  }
  return out;
}

}  // namespace

std::string dlb_tag_name(int tag) {
  switch (tag) {
    case core::kTagInterrupt:
      return "interrupt";
    case core::kTagProfile:
      return "profile";
    case core::kTagOutcome:
      return "outcome";
    case core::kTagWork:
      return "work";
    case core::kTagPhaseData:
      return "phase gather";
    case core::kTagPhaseScatter:
      return "phase scatter";
    case core::kTagIntrinsic:
      return "intrinsic";
  }
  if (tag >= core::kFtCentralProfileBase) {
    return "ft profile g" + std::to_string(tag - core::kFtCentralProfileBase);
  }
  if (tag >= core::kFtTagBase) {
    const int group = (tag - core::kFtTagBase) / core::kFtTagStride;
    const int offset = (tag - core::kFtTagBase) % core::kFtTagStride;
    if (const char* name = ft_offset_name(offset)) {
      return std::string(name) + " g" + std::to_string(group);
    }
  }
  return "";
}

std::string trace_file_name(const CellSpec& spec) {
  char index[16];
  std::snprintf(index, sizeof index, "%06zu", spec.index);
  return std::string("cell-") + index + "-" + sanitize(spec.app_name) + "-p" +
         std::to_string(spec.params.procs) + "-" +
         sanitize(core::strategy_label(spec.config.strategy)) + "-s" +
         std::to_string(spec.seed()) + ".json";
}

std::size_t write_cell_traces(const std::string& dir, const SweepResult& sweep) {
  std::filesystem::create_directories(dir);
  std::size_t written = 0;
  for (const auto& c : sweep.cells) {
    if (c.result.trace == nullptr && c.result.obs == nullptr) continue;
    const auto path = std::filesystem::path(dir) / trace_file_name(c.spec);
    std::ofstream os(path);
    if (!os) throw std::runtime_error("trace-out: cannot open " + path.string());
    obs::ChromeTraceOptions options;
    options.process_name = c.spec.app_name + " " +
                           core::strategy_name(c.spec.config.strategy) + " seed " +
                           std::to_string(c.spec.seed());
    options.procs = c.spec.params.procs;
    options.tag_namer = dlb_tag_name;
    obs::write_chrome_trace(os, core::to_activity_spans(c.result.trace.get()),
                            c.result.obs.get(), options);
    ++written;
  }
  return written;
}

}  // namespace dlb::exp
