// dlb_sweep — deterministic parallel experiment sweeps over the grid
// strategy x app x processors x load parameters x seeds.
//
//   ./dlb_sweep --figure=5                 # the paper's Fig. 5 grid (MXM, P=4)
//   ./dlb_sweep --app=mxm,trfd --procs=4,16 --strategies=all --seeds=3
//               [--tl=2,16] [--max-load=5] [--seed0=1000] [--loop=-1]
//               [--threads=0] [--format=summary|csv|json] [--timing]
//               [--R=400 --C=400 --R2=400] [--n=30]
//               [--faults=crash-half|crash-coord|crash-two|revoke-half|
//                         loss10|crash-loss]   # arm a fault preset
//
// Output on stdout is bit-identical for any --threads value (cells are
// merged in canonical grid order); host timing goes to stderr, and only
// --timing adds (nondeterministic) wall-time columns to the rows.

#include <iostream>
#include <stdexcept>

#include "exp/grid.hpp"
#include "exp/report.hpp"
#include "exp/runner.hpp"
#include "support/cli.hpp"

int main(int argc, char** argv) {
  using namespace dlb;
  try {
    const support::Cli cli(argc, argv);
    const auto grid = exp::parse_grid(cli);

    exp::RunnerOptions options;
    options.threads = static_cast<int>(cli.get_int("threads", 0));
    const exp::Runner runner(options);
    const auto sweep = runner.run(grid);

    exp::ReportOptions report;
    report.include_timing = cli.has("timing");
    report.include_faults = grid.config.faults.armed();
    const auto format = cli.get("format", "summary");
    if (format == "csv") {
      exp::write_csv(std::cout, sweep, report);
    } else if (format == "json") {
      exp::write_json(std::cout, sweep, report);
    } else if (format == "summary") {
      exp::write_summary(std::cout, sweep, grid.seeds);
    } else {
      throw std::invalid_argument("dlb_sweep: --format must be summary, csv or json");
    }
    exp::write_timing(std::cerr, sweep);
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "dlb_sweep: " << e.what() << "\n";
    return 1;
  }
}
