// dlb_sweep — deterministic parallel experiment sweeps over the grid
// strategy x app x processors x load parameters x seeds.
//
//   ./dlb_sweep --figure=5                 # the paper's Fig. 5 grid (MXM, P=4)
//   ./dlb_sweep --figure=scale             # weak-scaling: strategy x P x topology
//   ./dlb_sweep --figure=service           # open stream: latency vs rho x
//               strategy x arrival shape, with the service flag family
//               [--arrivals=poisson,bursty,trace:<path>] [--rate=0.3,...]
//               [--jobs=1000000] [--hysteresis=0.05,3] [--load-variants=8]
//               [--mix=default|hetero] [--service-backend=model|sim]
//   ./dlb_sweep --app=mxm,trfd --procs=4,16 --strategies=all --seeds=3
//               [--tl=2,16] [--max-load=5] [--seed0=1000] [--loop=-1]
//               [--threads=0] [--format=summary|csv|json] [--timing]
//               [--topology=shared,switched] [--rack-size=32] [--shards=1]
//               [--iters-per-proc=32]       # scale preset: work per processor
//               [--R=400 --C=400 --R2=400] [--n=30]
//               [--faults=crash-half|crash-coord|crash-two|revoke-half|
//                         loss10|crash-loss]   # arm a fault preset
//               [--trace-out=DIR]  # one Chrome trace-event JSON per cell
//               [--metrics]        # append observability metric columns
//
// Output on stdout is bit-identical for any --threads value (cells are
// merged in canonical grid order); host timing goes to stderr, and only
// --timing adds (nondeterministic) wall-time columns to the rows.
// --trace-out files are deterministic too: names come from the canonical
// cell index and contents from virtual time only.  Unknown --flags are
// rejected, so a typo fails loudly instead of silently running the
// default grid.

#include <iostream>
#include <stdexcept>

#include "exp/grid.hpp"
#include "exp/report.hpp"
#include "exp/runner.hpp"
#include "exp/trace_export.hpp"
#include "support/cli.hpp"

int main(int argc, char** argv) {
  using namespace dlb;
  try {
    const support::Cli cli(argc, argv);
    cli.reject_unknown({"figure", "app", "procs", "strategies", "tl", "max-load", "seeds",
                        "seed0", "loop", "threads", "format", "timing", "faults", "R", "C",
                        "R2", "n", "iters", "ops", "bytes", "trace-out", "metrics",
                        "topology", "rack-size", "shards", "iters-per-proc", "arrivals",
                        "rate", "jobs", "hysteresis", "load-variants", "mix",
                        "service-backend"});
    auto grid = exp::parse_grid(cli);

    const auto trace_dir = cli.get("trace-out", "");
    if (!trace_dir.empty() && grid.service.armed) {
      throw std::invalid_argument("dlb_sweep: --trace-out is not available in service mode");
    }
    if (!trace_dir.empty()) {
      // A Chrome trace wants both layers: activity segments for the solid
      // track and the recorder for phases, flows, marks and counters.
      grid.config.record_trace = true;
      grid.config.observe = true;
    }
    const bool metrics = cli.has("metrics");
    if (metrics) grid.config.observe = true;

    exp::RunnerOptions options;
    options.threads = static_cast<int>(cli.get_int("threads", 0));
    const exp::Runner runner(options);
    const auto sweep = runner.run(grid);

    if (!trace_dir.empty()) {
      const auto written = exp::write_cell_traces(trace_dir, sweep);
      std::cerr << "trace-out: " << written << " trace files in " << trace_dir << "\n";
    }

    exp::ReportOptions report;
    report.include_timing = cli.has("timing");
    report.include_faults = grid.config.faults.armed();
    report.include_metrics = metrics;
    // The column appears iff the grid actually sweeps or overrides the
    // topology, so pre-existing shared-only sweeps stay byte-identical.
    report.include_topology = grid.topologies.size() > 1 ||
                              grid.topologies[0] != net::TopologyKind::kShared;
    // Same non-default rule for the service columns: they appear iff the
    // grid is armed, so disarmed sweeps (fig5-8) stay byte-identical.
    report.include_service = grid.service.armed;
    const auto format = cli.get("format", "summary");
    if (format == "csv") {
      exp::write_csv(std::cout, sweep, report);
    } else if (format == "json") {
      exp::write_json(std::cout, sweep, report);
    } else if (format == "summary") {
      exp::write_summary(std::cout, sweep, grid.seeds, report.include_topology,
                         report.include_service);
    } else {
      throw std::invalid_argument("dlb_sweep: --format must be summary, csv or json");
    }
    exp::write_timing(std::cerr, sweep);
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "dlb_sweep: " << e.what() << "\n";
    return 1;
  }
}
