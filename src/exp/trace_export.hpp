#pragma once

#include <cstddef>
#include <string>

#include "exp/runner.hpp"

namespace dlb::exp {

/// Names a DLB wire-protocol tag for the Chrome trace flow arrows: the
/// fault-free tags (core/protocol.hpp), the fault-tolerant per-group tag
/// blocks and the centralized profile tags (core/ft_protocol.hpp).  Unknown
/// tags return "" so the exporter falls back to "tag N".
[[nodiscard]] std::string dlb_tag_name(int tag);

/// Deterministic per-cell trace filename: the canonical grid index plus a
/// sanitized human-readable spec (app, procs, strategy, seed).  Pure
/// function of the spec, so a sweep writes the same names at any --threads.
[[nodiscard]] std::string trace_file_name(const CellSpec& spec);

/// Writes one Chrome trace-event JSON file per cell of `sweep` into `dir`
/// (created if missing).  Cells run without trace/observability recording
/// are skipped.  Returns the number of files written.
std::size_t write_cell_traces(const std::string& dir, const SweepResult& sweep);

}  // namespace dlb::exp
