#include "exp/runner.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <numeric>
#include <optional>
#include <utility>

#include "core/runtime.hpp"
#include "exp/pool.hpp"
#include "net/characterize.hpp"
#include "obs/metrics.hpp"
#include "support/rng.hpp"
#include "svc/service.hpp"

namespace dlb::exp {

namespace {

double elapsed_seconds(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

/// One service cell: characterize the network for the predictor (pure
/// virtual-time simulation, deterministic per parameter set), then run the
/// open stream.  Observability reduces to the metrics registry — service
/// mode has no recorder or trace hooks.
void run_service_cell(CellResult& out) {
  core::DlbConfig config = out.spec.config;
  const bool observe = config.observe;
  config.observe = false;
  config.record_trace = false;
  if (config.strategy == core::Strategy::kAuto) config.strategy = core::Strategy::kNoDlb;

  const auto costs =
      net::characterize(out.spec.params.network, std::max(out.spec.params.procs, 16)).costs;
  obs::MetricsRegistry registry;
  out.service = svc::run_service(out.spec.params, config, *out.spec.service, costs,
                                 observe ? &registry : nullptr);
  out.result.app_name = out.spec.app_name;
  out.result.strategy_name = out.spec.service->online
                                 ? "online"
                                 : std::string(core::strategy_name(out.spec.service->strategy));
  out.result.exec_seconds = out.service->horizon_seconds;
  out.result.messages = out.service->messages;
  out.result.bytes = out.service->bytes;
  if (observe) out.result.metrics = registry.snapshot();
}

}  // namespace

double SweepResult::cell_wall_sum() const {
  double sum = 0.0;
  for (const auto& c : cells) sum += c.wall_seconds;
  return sum;
}

Runner::Runner(RunnerOptions options) : options_(options) {}

CellResult Runner::run_cell(const ExperimentGrid& grid, std::size_t index, Pool* pool) {
  const auto t0 = std::chrono::steady_clock::now();
  CellResult out;
  out.spec = grid.cell(index);

  if (out.spec.service) {
    run_service_cell(out);
    out.wall_seconds = elapsed_seconds(t0);
    return out;
  }

  cluster::Cluster cluster(out.spec.params);
  std::optional<PoolShardExecutor> executor;
  if (pool != nullptr && cluster.engine().is_sharded()) {
    executor.emplace(*pool);
    cluster.engine().set_executor(&*executor);
  }
  const core::AppDescriptor& app =
      out.spec.app_override ? *out.spec.app_override : grid.apps[out.spec.app_i].app;
  core::Runtime runtime(cluster, app, out.spec.config);
  out.result = out.spec.loop_index < 0
                   ? runtime.run()
                   : runtime.run_single_loop(static_cast<std::size_t>(out.spec.loop_index));
  out.wall_seconds = elapsed_seconds(t0);
  return out;
}

SweepResult Runner::run_serial(const ExperimentGrid& grid) {
  grid.validate();
  const auto t0 = std::chrono::steady_clock::now();
  SweepResult sweep;
  sweep.threads = 1;
  const std::size_t n = grid.cell_count();
  sweep.cells.reserve(n);
  for (std::size_t i = 0; i < n; ++i) sweep.cells.push_back(run_cell(grid, i));
  sweep.wall_seconds = elapsed_seconds(t0);
  return sweep;
}

SweepResult Runner::run(const ExperimentGrid& grid) const {
  grid.validate();
  const auto t0 = std::chrono::steady_clock::now();
  const std::size_t n = grid.cell_count();

  SweepResult sweep;
  sweep.threads = Pool::resolve_threads(options_.threads);
  sweep.cells.resize(n);
  std::vector<std::exception_ptr> errors(n);

  // Submission order is a performance detail (and a determinism test
  // knob); each task writes only its own canonical slot.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  if (options_.shuffle_submission) {
    // Salted stream, not the raw seed: any future draw purpose sharing
    // shuffle_seed gets its own fork and the permutation stays put.
    constexpr std::uint64_t kShuffleStream = 0x53485546;  // "SHUF"
    support::Rng rng = support::Rng(options_.shuffle_seed).fork(kShuffleStream);
    for (std::size_t i = n; i > 1; --i) {
      const auto j = rng.uniform_int(0, static_cast<std::int64_t>(i) - 1);
      std::swap(order[i - 1], order[static_cast<std::size_t>(j)]);
    }
  }

  Pool pool(options_.threads);
  for (const std::size_t index : order) {
    pool.submit([&grid, &sweep, &errors, &pool, index] {
      try {
        sweep.cells[index] = Runner::run_cell(grid, index, &pool);
      } catch (...) {
        errors[index] = std::current_exception();
      }
    });
  }
  pool.wait();

  // Re-throw the first failure in canonical order (deterministic even when
  // several cells fail).
  for (const auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
  sweep.wall_seconds = elapsed_seconds(t0);
  return sweep;
}

}  // namespace dlb::exp
