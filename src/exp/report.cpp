#include "exp/report.hpp"

#include <iomanip>
#include <map>
#include <ostream>
#include <sstream>

#include "net/topology.hpp"
#include "support/csv.hpp"
#include "support/table.hpp"

namespace dlb::exp {

namespace {

// 12 fixed columns plus the optional service, fault, metric and
// wall_seconds ones.
constexpr std::size_t kMaxColumns = 34;

/// Canonical metric column set: the union of metric names over all cells,
/// sorted (snapshots are already name-sorted, so a std::map union keeps the
/// canonical order).  Identically configured cells register identical names,
/// so this is usually just the first cell's key sequence.
std::vector<std::string> metric_columns(const SweepResult& sweep) {
  std::map<std::string, int> names;
  for (const auto& c : sweep.cells) {
    for (const auto& [name, value] : c.result.metrics.values) names.emplace(name, 0);
  }
  std::vector<std::string> out;
  out.reserve(names.size());
  for (const auto& [name, unused] : names) out.push_back(name);
  return out;
}

/// Service cells under online re-customization carry Strategy::kAuto; the
/// canonical label for that mode is "online", not the selector's "Auto".
std::string strategy_label(const CellResult& c) {
  if (c.spec.service && c.spec.config.strategy == core::Strategy::kAuto) return "online";
  return std::string(core::strategy_name(c.spec.config.strategy));
}

std::vector<std::string> header_row(const ReportOptions& options,
                                    const std::vector<std::string>& metrics) {
  std::vector<std::string> h;
  h.reserve(kMaxColumns + metrics.size());
  h.insert(h.end(), {"app", "procs"});
  if (options.include_topology) h.push_back("topology");
  if (options.include_service) h.insert(h.end(), {"arrivals", "rate"});
  h.insert(h.end(), {"strategy", "tl_seconds",
                     "max_load", "seed", "exec_seconds",    "syncs",
                     "redistributions", "iterations_moved", "messages", "bytes"});
  if (options.include_service) {
    h.insert(h.end(),
             {"jobs", "rate_jobs_per_sec", "throughput_jobs_per_sec", "utilization",
              "p50_sojourn_seconds", "p99_sojourn_seconds", "p999_sojourn_seconds",
              "mean_sojourn_seconds", "mean_service_seconds", "mean_wait_seconds",
              "strategy_switches"});
  }
  if (options.include_faults) {
    h.insert(h.end(), {"faults", "crashes", "revocations", "rejoins", "dropped_frames",
                       "retries", "recoveries", "iterations_recovered"});
  }
  h.insert(h.end(), metrics.begin(), metrics.end());
  if (options.include_timing) h.push_back("wall_seconds");
  return h;
}

std::vector<std::string> cell_row(const CellResult& c, const ReportOptions& options,
                                  const std::vector<std::string>& metrics) {
  std::vector<std::string> row;
  row.reserve(kMaxColumns + metrics.size());
  row.insert(row.end(), {
      c.spec.app_name,
      std::to_string(c.spec.params.procs),
  });
  if (options.include_topology) {
    row.push_back(net::topology_name(c.spec.params.topology));
  }
  if (options.include_service) {
    const auto& sp = c.spec.service;
    row.push_back(sp ? sp->arrival.label : "none");
    row.push_back(fmt_exact(sp ? sp->rho : 0.0));
  }
  row.insert(row.end(), {
      strategy_label(c),
      fmt_exact(c.spec.tl_seconds),
      std::to_string(c.spec.params.load.max_load),
      std::to_string(c.spec.seed()),
      fmt_exact(c.result.exec_seconds),
      std::to_string(c.result.total_syncs()),
      std::to_string(c.result.total_redistributions()),
      std::to_string(c.result.total_iterations_moved()),
      std::to_string(c.result.messages),
      std::to_string(c.result.bytes),
  });
  if (options.include_service) {
    const svc::ServiceReport empty{};
    const auto& r = c.service ? *c.service : empty;
    row.insert(row.end(), {
        std::to_string(r.jobs),
        fmt_exact(r.rate_jobs_per_sec),
        fmt_exact(r.throughput_jobs_per_sec),
        fmt_exact(r.utilization),
        fmt_exact(r.p50_sojourn_seconds),
        fmt_exact(r.p99_sojourn_seconds),
        fmt_exact(r.p999_sojourn_seconds),
        fmt_exact(r.mean_sojourn_seconds),
        fmt_exact(r.mean_service_seconds),
        fmt_exact(r.mean_wait_seconds),
        std::to_string(r.strategy_switches),
    });
  }
  if (options.include_faults) {
    const auto& f = c.result.faults;
    row.insert(row.end(), {
        c.spec.config.faults.name,
        std::to_string(f.crashes),
        std::to_string(f.revocations),
        std::to_string(f.rejoins),
        std::to_string(f.dropped_frames),
        std::to_string(f.retries),
        std::to_string(f.recoveries),
        std::to_string(f.iterations_recovered),
    });
  }
  for (const auto& name : metrics) {
    row.push_back(fmt_exact(c.result.metrics.value_of(name, 0.0)));
  }
  if (options.include_timing) row.push_back(fmt_exact(c.wall_seconds));
  return row;
}

/// A JSON numeric token for an already-formatted value.  IEEE infinities and
/// NaNs have no JSON spelling — "inf"/"nan" in the output used to make the
/// whole document unparseable — so they become null.
bool json_numeric_invalid(const std::string& formatted) {
  return formatted.find("inf") != std::string::npos ||
         formatted.find("nan") != std::string::npos;
}

}  // namespace

std::string fmt_exact(double value) {
  std::ostringstream ss;
  ss << std::setprecision(17) << value;
  return ss.str();
}

void write_csv(std::ostream& os, const SweepResult& sweep, const ReportOptions& options) {
  const auto metrics =
      options.include_metrics ? metric_columns(sweep) : std::vector<std::string>{};
  support::CsvWriter csv(os);
  csv.write_row(header_row(options, metrics));
  for (const auto& c : sweep.cells) csv.write_row(cell_row(c, options, metrics));
}

void write_json(std::ostream& os, const SweepResult& sweep, const ReportOptions& options) {
  const auto metrics =
      options.include_metrics ? metric_columns(sweep) : std::vector<std::string>{};
  const auto header = header_row(options, metrics);
  os << "[\n";
  std::string line;  // reused across rows; capacity settles after the first
  line.reserve(256);
  for (std::size_t i = 0; i < sweep.cells.size(); ++i) {
    const auto row = cell_row(sweep.cells[i], options, metrics);
    line.clear();
    line += "  {";
    for (std::size_t k = 0; k < header.size(); ++k) {
      // Numeric columns are every one except app, topology, arrivals,
      // strategy and the fault preset name.
      const bool quoted = header[k] == "app" || header[k] == "topology" ||
                          header[k] == "arrivals" || header[k] == "strategy" ||
                          header[k] == "faults";
      if (k) line += ", ";
      line += '"';
      line += header[k];
      line += "\": ";
      if (quoted) {
        line += '"';
        line += row[k];
        line += '"';
      } else if (json_numeric_invalid(row[k])) {
        line += "null";
      } else {
        line += row[k];
      }
    }
    line += '}';
    if (i + 1 < sweep.cells.size()) line += ',';
    line += '\n';
    os << line;
  }
  os << "]\n";
}

void write_summary(std::ostream& os, const SweepResult& sweep, int seeds, bool include_topology,
                   bool include_service) {
  if (seeds <= 0 || sweep.cells.size() % static_cast<std::size_t>(seeds) != 0) {
    os << "(summary unavailable: cell count not a multiple of seeds)\n";
    return;
  }
  std::vector<std::string> table_header{"app", "P"};
  std::vector<std::string> csv_header{"app", "procs"};
  if (include_topology) {
    table_header.push_back("topology");
    csv_header.push_back("topology");
  }
  if (include_service) {
    for (const auto* col : {"arrivals", "rate"}) {
      table_header.emplace_back(col);
      csv_header.emplace_back(col);
    }
  }
  for (const auto* col : {"strategy", "tl", "m_l", "mean exec [s]", "mean syncs", "mean moved"}) {
    table_header.emplace_back(col);
  }
  for (const auto* col : {"strategy", "tl_seconds", "max_load", "mean_exec_seconds", "mean_syncs",
                          "mean_iterations_moved"}) {
    csv_header.emplace_back(col);
  }
  if (include_service) {
    for (const auto* col : {"p50 [s]", "p99 [s]", "p999 [s]", "jobs/s", "util"}) {
      table_header.emplace_back(col);
    }
    for (const auto* col : {"mean_p50_sojourn_seconds", "mean_p99_sojourn_seconds",
                            "mean_p999_sojourn_seconds", "mean_throughput_jobs_per_sec",
                            "mean_utilization"}) {
      csv_header.emplace_back(col);
    }
  }
  support::Table table(table_header);
  std::ostringstream csv_buf;
  support::CsvWriter csv(csv_buf);
  csv.write_row(csv_header);

  // Seeds are the innermost axis, so each grid point is a contiguous block.
  for (std::size_t base = 0; base < sweep.cells.size(); base += static_cast<std::size_t>(seeds)) {
    double exec = 0.0, syncs = 0.0, moved = 0.0;
    double p50 = 0.0, p99 = 0.0, p999 = 0.0, throughput = 0.0, util = 0.0;
    for (int s = 0; s < seeds; ++s) {
      const auto& cell = sweep.cells[base + static_cast<std::size_t>(s)];
      const auto& r = cell.result;
      exec += r.exec_seconds;
      syncs += r.total_syncs();
      moved += static_cast<double>(r.total_iterations_moved());
      if (cell.service) {
        p50 += cell.service->p50_sojourn_seconds;
        p99 += cell.service->p99_sojourn_seconds;
        p999 += cell.service->p999_sojourn_seconds;
        throughput += cell.service->throughput_jobs_per_sec;
        util += cell.service->utilization;
      }
    }
    exec /= seeds;
    syncs /= seeds;
    moved /= seeds;
    p50 /= seeds;
    p99 /= seeds;
    p999 /= seeds;
    throughput /= seeds;
    util /= seeds;
    const auto& cell0 = sweep.cells[base];
    const auto& spec = cell0.spec;
    std::vector<std::string> table_row{spec.app_name, std::to_string(spec.params.procs)};
    std::vector<std::string> csv_row = table_row;
    if (include_topology) {
      table_row.emplace_back(net::topology_name(spec.params.topology));
      csv_row.emplace_back(net::topology_name(spec.params.topology));
    }
    if (include_service) {
      const std::string arrivals = spec.service ? spec.service->arrival.label : "none";
      const std::string rate = fmt_exact(spec.service ? spec.service->rho : 0.0);
      table_row.push_back(arrivals);
      table_row.push_back(rate);
      csv_row.push_back(arrivals);
      csv_row.push_back(rate);
    }
    for (auto& value :
         {strategy_label(cell0),
          support::fmt_fixed(spec.tl_seconds, 1), std::to_string(spec.params.load.max_load),
          support::fmt_fixed(exec, 4), support::fmt_fixed(syncs, 2),
          support::fmt_fixed(moved, 1)}) {
      table_row.push_back(value);
    }
    for (auto& value : {strategy_label(cell0),
                        fmt_exact(spec.tl_seconds), std::to_string(spec.params.load.max_load),
                        fmt_exact(exec), fmt_exact(syncs), fmt_exact(moved)}) {
      csv_row.push_back(value);
    }
    if (include_service) {
      for (auto& value : {support::fmt_fixed(p50, 4), support::fmt_fixed(p99, 4),
                          support::fmt_fixed(p999, 4), support::fmt_fixed(throughput, 3),
                          support::fmt_fixed(util, 4)}) {
        table_row.push_back(value);
      }
      for (auto& value : {fmt_exact(p50), fmt_exact(p99), fmt_exact(p999), fmt_exact(throughput),
                          fmt_exact(util)}) {
        csv_row.push_back(value);
      }
    }
    table.add_row(table_row);
    csv.write_row(csv_row);
  }
  table.print(os);
  os << "\ncsv:\n" << csv_buf.str();
}

void write_timing(std::ostream& os, const SweepResult& sweep) {
  const double wall = sweep.wall_seconds;
  const double serial = sweep.cell_wall_sum();
  os << "timing: " << sweep.cells.size() << " cells, " << sweep.threads << " threads, wall "
     << support::fmt_fixed(wall, 3) << " s, serial-equivalent " << support::fmt_fixed(serial, 3)
     << " s, speedup " << support::fmt_fixed(wall > 0 ? serial / wall : 0.0, 2) << "x, "
     << support::fmt_fixed(wall > 0 ? sweep.cells.size() / wall : 0.0, 1) << " cells/s\n";
}

}  // namespace dlb::exp
