#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "sim/executor.hpp"

namespace dlb::exp {

/// Work-stealing pool of OS threads for running whole simulation cells in
/// parallel.  Each worker owns a deque: it pops its own work LIFO (newest
/// first, cache-warm) and steals FIFO from a victim's opposite end when
/// empty — the classic Blumofe/Leiserson discipline.  Tasks here are
/// coarse (one task = one multi-second Engine run), so the deques are
/// mutex-guarded for simplicity; contention is negligible at this grain.
///
/// The pool makes no ordering promises — determinism of experiment output
/// is the Runner's job (it merges results by canonical grid index, so the
/// bytes produced are independent of thread count and completion order).
class Pool {
 public:
  /// threads == 0 picks std::thread::hardware_concurrency() (min 1).
  explicit Pool(int threads = 0);
  ~Pool();  // drains nothing: waits only for tasks already running, discards queued ones
  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;

  /// Enqueues a task.  Tasks must not throw (wrap user work and capture
  /// exceptions into your own slots; the Runner stores std::exception_ptr
  /// per cell).  May be called from any thread, including workers.
  void submit(std::function<void()> task);

  /// Blocks until every task submitted so far has finished executing.
  void wait();

  /// Runs fn(0..count-1) to completion, sharing the indexes with idle
  /// workers.  Claim-and-help: the caller claims and executes indexes
  /// inline — so the call makes progress even when every worker is busy or
  /// the pool has one thread — while up to size()-1 helper tasks let idle
  /// workers join in.  Safe to call from worker threads (a cell task
  /// running its engine's shard windows); never deadlocks because the
  /// caller does not depend on any helper being scheduled.  `fn` must not
  /// throw (the sharded engine parks exceptions per shard instead).
  void run_batch(std::size_t count, const std::function<void(std::size_t)>& fn);

  [[nodiscard]] int size() const noexcept { return static_cast<int>(workers_.size()); }

  /// Resolves the threads argument the way the constructor does.
  [[nodiscard]] static int resolve_threads(int threads) noexcept;

 private:
  struct Worker {
    std::deque<std::function<void()>> tasks;
    std::mutex mutex;
  };

  /// One run_batch invocation: a shared claim counter plus a completion
  /// latch.  Indexes are claimed before execution, so every index runs
  /// exactly once whether the caller or a helper gets it.
  struct Batch {
    std::atomic<std::size_t> next{0};
    std::size_t done = 0;  // guarded by mutex
    std::size_t count = 0;
    const std::function<void(std::size_t)>* fn = nullptr;
    std::mutex mutex;
    std::condition_variable finished;
  };

  static void help(const std::shared_ptr<Batch>& batch);

  void worker_loop(std::size_t id);
  [[nodiscard]] bool try_acquire(std::size_t id, std::function<void()>& out);

  std::vector<std::unique_ptr<Worker>> queues_;
  std::vector<std::thread> workers_;

  std::mutex state_mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::size_t submitted_ = 0;
  std::size_t completed_ = 0;
  std::size_t next_queue_ = 0;  // round-robin submission target
  bool stop_ = false;
};

/// Adapter running a sharded Engine's window tasks on an exp::Pool, so
/// cell-level parallelism (one task per simulation cell) and intra-cell
/// shard parallelism draw from the same thread budget instead of
/// oversubscribing the host.  Pure mechanism: the engine's windowed
/// algorithm keeps results identical to the built-in InlineExecutor.
class PoolShardExecutor final : public sim::ShardExecutor {
 public:
  explicit PoolShardExecutor(Pool& pool) noexcept : pool_(&pool) {}

  void run_tasks(std::size_t count, const std::function<void(std::size_t)>& fn) override {
    pool_->run_batch(count, fn);
  }

 private:
  Pool* pool_;
};

}  // namespace dlb::exp
