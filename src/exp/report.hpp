#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "exp/runner.hpp"

namespace dlb::exp {

struct ReportOptions {
  /// Include per-cell host wall time columns.  Off by default: the result
  /// columns are bit-deterministic across thread counts, timing is not.
  bool include_timing = false;
  /// Include the fault preset name and counters (crashes, revocations,
  /// rejoins, dropped_frames, retries, recoveries, iterations_recovered).
  /// Deterministic like the rest of the result columns — the whole fault
  /// schedule lives in virtual time.  dlb_sweep turns this on iff the
  /// grid's plan is armed, so unarmed output stays byte-identical.
  bool include_faults = false;
  /// Append one column per observability metric (the canonical union of
  /// metric names across all cells, sorted by name — histogram buckets
  /// flatten to `name.le_<bound>` keys).  Cells that lack a metric print 0.
  /// dlb_sweep turns this on with --metrics; it requires cells run with
  /// DlbConfig::observe, otherwise there are simply no metric columns.
  bool include_metrics = false;
  /// Insert a "topology" column after "procs".  dlb_sweep turns this on iff
  /// the grid's topology axis is non-default, so existing shared-only
  /// sweeps (the fig5-8 baselines) stay byte-identical.
  bool include_topology = false;
  /// Service-mode columns, mirroring the topology rule: "arrivals" and
  /// "rate" identity columns after topology, and the SLA block (jobs,
  /// rates, utilization, exact p50/p99/p999 sojourn, means, switches) after
  /// "bytes".  dlb_sweep turns this on iff the grid is armed, so every
  /// disarmed sweep stays byte-identical.
  bool include_service = false;
};

/// One CSV/JSON row per cell, canonical grid order.  Columns:
/// app, procs [, topology] [, arrivals, rate], strategy, tl_seconds,
/// max_load, seed, exec_seconds, syncs, redistributions, iterations_moved,
/// messages, bytes [, 11 service SLA columns] [, faults..8 fault columns]
/// [, wall_seconds].
/// exec_seconds is printed with round-trip (max_digits10) precision so
/// equality of bytes implies equality of doubles.
void write_csv(std::ostream& os, const SweepResult& sweep, const ReportOptions& options = {});
void write_json(std::ostream& os, const SweepResult& sweep, const ReportOptions& options = {});

/// Aggregated view: one row per grid point (all axes except seed), mean
/// exec/syncs/moved over the seed axis — the shape the paper's figures
/// plot.  Written as an aligned table plus a trailing CSV block, mirroring
/// the bench output style.  include_topology mirrors ReportOptions.
void write_summary(std::ostream& os, const SweepResult& sweep, int seeds,
                   bool include_topology = false, bool include_service = false);

/// Host-timing summary (total wall, serial-equivalent sum, speedup,
/// cells/s).  Separate from the deterministic result streams.
void write_timing(std::ostream& os, const SweepResult& sweep);

/// Round-trip double formatting (max_digits10, shortest-faithful enough
/// for byte comparison of equal doubles).
[[nodiscard]] std::string fmt_exact(double value);

}  // namespace dlb::exp
