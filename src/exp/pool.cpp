#include "exp/pool.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

namespace dlb::exp {

int Pool::resolve_threads(int threads) noexcept {
  if (threads > 0) return threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

Pool::Pool(int threads) {
  const int n = resolve_threads(threads);
  queues_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) queues_.push_back(std::make_unique<Worker>());
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { worker_loop(static_cast<std::size_t>(i)); });
  }
}

Pool::~Pool() {
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    stop_ = true;
  }
  work_available_.notify_all();
  for (auto& w : workers_) w.join();
}

void Pool::submit(std::function<void()> task) {
  std::size_t target;
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    ++submitted_;
    target = next_queue_;
    next_queue_ = (next_queue_ + 1) % queues_.size();
  }
  {
    std::lock_guard<std::mutex> lock(queues_[target]->mutex);
    queues_[target]->tasks.push_back(std::move(task));
  }
  work_available_.notify_one();
}

void Pool::wait() {
  std::unique_lock<std::mutex> lock(state_mutex_);
  all_done_.wait(lock, [this] { return completed_ == submitted_; });
}

void Pool::help(const std::shared_ptr<Batch>& batch) {
  for (;;) {
    const std::size_t i = batch->next.fetch_add(1, std::memory_order_relaxed);
    if (i >= batch->count) return;
    (*batch->fn)(i);
    std::lock_guard<std::mutex> lock(batch->mutex);
    if (++batch->done == batch->count) batch->finished.notify_all();
  }
}

void Pool::run_batch(std::size_t count, const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  if (count == 1 || size() == 1) {
    // Nobody to share with (or nothing to share): skip the latch entirely.
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  auto batch = std::make_shared<Batch>();
  batch->count = count;
  // The caller blocks in this frame until done == count, and helpers only
  // dereference fn for indexes claimed before that, so the pointer is safe.
  batch->fn = &fn;
  const std::size_t helpers = std::min(count, static_cast<std::size_t>(size())) - 1;
  for (std::size_t h = 0; h < helpers; ++h) {
    submit([batch] { help(batch); });
  }
  help(batch);  // claim inline: progress never depends on helper scheduling
  std::unique_lock<std::mutex> lock(batch->mutex);
  batch->finished.wait(lock, [&batch] { return batch->done == batch->count; });
}

bool Pool::try_acquire(std::size_t id, std::function<void()>& out) {
  // Own deque first, LIFO...
  {
    auto& mine = *queues_[id];
    std::lock_guard<std::mutex> lock(mine.mutex);
    if (!mine.tasks.empty()) {
      out = std::move(mine.tasks.back());
      mine.tasks.pop_back();
      return true;
    }
  }
  // ...then sweep the victims' deques FIFO, starting at the right neighbour.
  for (std::size_t k = 1; k < queues_.size(); ++k) {
    auto& victim = *queues_[(id + k) % queues_.size()];
    std::lock_guard<std::mutex> lock(victim.mutex);
    if (!victim.tasks.empty()) {
      out = std::move(victim.tasks.front());
      victim.tasks.pop_front();
      return true;
    }
  }
  return false;
}

void Pool::worker_loop(std::size_t id) {
  for (;;) {
    std::function<void()> task;
    if (try_acquire(id, task)) {
      task();
      std::lock_guard<std::mutex> lock(state_mutex_);
      ++completed_;
      if (completed_ == submitted_) all_done_.notify_all();
      continue;
    }
    std::unique_lock<std::mutex> lock(state_mutex_);
    if (stop_) return;
    if (completed_ == submitted_) all_done_.notify_all();
    // Re-check the deques under no lock after waking; spurious wakeups and
    // races with submit() are handled by looping back to try_acquire.
    work_available_.wait_for(lock, std::chrono::milliseconds(50));
  }
}

}  // namespace dlb::exp
