#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "core/types.hpp"
#include "support/cli.hpp"
#include "svc/service.hpp"

namespace dlb::exp {

/// One application on the app axis of a grid: the descriptor plus the
/// cluster calibration that goes with it (the paper profiles the
/// per-iteration rate per application, §4.1, so the rate travels with the
/// app, not the cluster).
struct AppSpec {
  std::string name;  // row label, e.g. "mxm[R=400,C=400,R2=400]"
  core::AppDescriptor app;
  double base_ops_per_sec = 20e6;
  /// Load persistence t_l used when the grid has no explicit tl axis.
  double default_tl_seconds = 1.0;
  /// Weak-scaling hook (--figure=scale): when > 0, each cell runs a fresh
  /// uniform synthetic of weak_iters_per_proc * procs iterations (via
  /// CellSpec::app_override) instead of `app`, so per-processor work stays
  /// constant along the procs axis and wall time measures overhead, not
  /// problem growth.
  int weak_iters_per_proc = 0;
  double weak_ops_per_iteration = 0.0;
  double weak_bytes_per_iteration = 0.0;
};

/// Fully resolved coordinates + parameters of one experiment cell.  Cells
/// are pure: everything a run needs is in here, nothing is shared with
/// other cells, so a cell can execute on any thread.
struct CellSpec {
  std::size_t index = 0;  // canonical (row-major) grid index
  std::size_t app_i = 0, proc_i = 0, topo_i = 0, arr_i = 0, rho_i = 0, tl_i = 0, load_i = 0,
              strat_i = 0, seed_i = 0;
  std::string app_name;
  cluster::ClusterParams params;  // procs/rate/topology/tl/m_l/seed all resolved
  core::DlbConfig config;         // strategy resolved
  int loop_index = -1;            // -1: whole app; else single loop
  double tl_seconds = 0.0;
  /// Set when the app spec weak-scales (see AppSpec): the descriptor the
  /// cell actually runs, sized for this cell's processor count.
  std::optional<core::AppDescriptor> app_override;
  /// Set when the grid runs in service mode: the fully resolved open-stream
  /// parameters for this cell (arrival shape, offered load, strategy or
  /// online re-customization).  The runner dispatches to svc::run_service
  /// instead of building a Runtime.
  std::optional<svc::ServiceParams> service;
  [[nodiscard]] std::uint64_t seed() const noexcept { return params.seed; }
};

/// Service-mode axes and knobs of a grid.  Disarmed (the default), the
/// arrival and offered-load axes have size 1 and divide out of the
/// row-major decode, so every pre-service grid keeps its canonical cell
/// indices — the fig5-8 byte-identity guarantee.
struct ServiceGridConfig {
  bool armed = false;
  /// Arrival-shape axis (between topology and tl in the row-major order).
  std::vector<svc::ArrivalSpec> arrivals{svc::ArrivalSpec{}};
  /// Offered-load axis rho (inside arrivals, outside tl).
  std::vector<double> rhos{0.7};
  std::uint64_t jobs = 1'000'000;
  svc::JobMix mix = svc::JobMix::builtin("default");
  int load_variants = 8;
  decision::HysteresisConfig hysteresis;
  svc::ServiceBackend backend = svc::ServiceBackend::kModel;
};

/// The cross product strategy x app x cluster size x load parameters x
/// seed, enumerated in a fixed row-major order (app outermost, seed
/// innermost) that defines the canonical output order of every sweep.
struct ExperimentGrid {
  std::vector<AppSpec> apps;
  std::vector<int> procs{4};
  /// Topology axis (between procs and tl in the row-major order).  The
  /// default single-element shared axis keeps every pre-topology grid's
  /// canonical indices — a size-1 axis divides out of the decode.
  std::vector<net::TopologyKind> topologies{net::TopologyKind::kShared};
  std::vector<core::Strategy> strategies;
  /// Load persistence axis; empty means one point at each app's default.
  std::vector<double> tl_seconds;
  /// Load amplitude axis (the paper's m_l; 0 = dedicated machines).
  std::vector<int> max_loads{5};
  int seeds = 1;
  std::uint64_t seed0 = 1000;
  /// Template for every cell's cluster; the axes override procs, the app's
  /// rate, the load parameters and the seed, everything else (speeds,
  /// quantum, network, segments) is taken from here.
  cluster::ClusterParams cluster_template;
  /// Template for every cell's DlbConfig; the strategy field is overridden
  /// per cell from the strategy axis.
  core::DlbConfig config;
  /// -1 runs the whole application, >= 0 a single loop (per-loop rankings).
  int loop_index = -1;
  /// Service mode (open job stream); see ServiceGridConfig.
  ServiceGridConfig service;

  void validate() const;
  [[nodiscard]] std::size_t cell_count() const noexcept;
  /// Resolves cell `index` (0 <= index < cell_count()).
  [[nodiscard]] CellSpec cell(std::size_t index) const;
  /// Number of points on the effective tl axis (>= 1).
  [[nodiscard]] std::size_t tl_points() const noexcept {
    return tl_seconds.empty() ? 1 : tl_seconds.size();
  }
  /// Sizes of the service axes; 1 while disarmed so the decode is unchanged.
  [[nodiscard]] std::size_t arrival_points() const noexcept {
    return service.armed ? service.arrivals.size() : 1;
  }
  [[nodiscard]] std::size_t rho_points() const noexcept {
    return service.armed ? service.rhos.size() : 1;
  }
};

/// Builds an AppSpec from a name and shape flags ("mxm", "trfd",
/// "uniform"); used by dlb_sweep and reusable from tests.
[[nodiscard]] AppSpec make_app_spec(const std::string& name, const support::Cli& cli);

/// Parses a grid from dlb_sweep-style flags:
///   --app=mxm,trfd --procs=4,16 --strategies=all|nodlb,gc,gd,lc,ld
///   --tl=16 --max-load=5 --seeds=3 --seed0=1000 --loop=-1
///   --R/--C/--R2 (mxm shape), --n (trfd), --iters/--ops/--bytes (uniform)
///   --topology=shared,switched --rack-size=32 --shards=1 (engine shards;
///     only a switched topology ever shards — see ClusterParams)
///   --figure=5|6|7|8 presets the paper grids (app shapes, procs, rates).
///   --figure=scale presets the weak-scaling grid: strategy x P x topology
///     with a uniform app whose iterations grow with P (fixed per-proc
///     work); defaults procs=256,1024,4096, strategies=nodlb,gc (the
///     distributed schemes broadcast all-to-all every round — O(P^2)
///     frames — which is exactly the shared-medium wall this grid shows),
///     seeds=1, --iters-per-proc=32.
///   --faults=none|crash-half|crash-coord|crash-two|revoke-half|loss10|crash-loss
///     arms a fault preset on every cell; NoDLB is dropped from the strategy
///     axis when armed (it has no recovery path).
///   --figure=service presets the open-stream service grid: latency vs.
///     offered load rho x strategy x arrival shape (defaults procs=16,
///     strategies=gc,gd,lc,ld,online, --arrivals=poisson,bursty,
///     --rate=0.3,0.5,0.7,0.8,0.9,0.95, --jobs=1000000, seeds=1).  The
///     service flag family refines it:
///       --arrivals=poisson,bursty,trace:<path>   (arrival-shape axis)
///       --rate=0.3,0.9                           (offered-load axis rho)
///       --jobs=N --hysteresis=<margin>,<k> --load-variants=N
///       --mix=default|hetero --service-backend=model|sim
///     Service flags outside --figure=service are rejected.
/// Throws std::invalid_argument on unknown app, strategy or fault names.
[[nodiscard]] ExperimentGrid parse_grid(const support::Cli& cli);

/// Strategy list from a comma-separated spec of short labels
/// ("nodlb,gc,gd,lc,ld"), "all" (the five figure schemes, NoDLB first) or
/// "ranked" (the four ranked DLB schemes).  "online" (service grids only)
/// maps to Strategy::kAuto, meaning online re-customization with
/// hysteresis instead of one fixed strategy.
[[nodiscard]] std::vector<core::Strategy> parse_strategies(const std::string& spec);

}  // namespace dlb::exp
