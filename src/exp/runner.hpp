#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "core/run_stats.hpp"
#include "exp/grid.hpp"

namespace dlb::exp {

class Pool;

struct RunnerOptions {
  /// Pool width; 0 picks hardware concurrency, 1 degenerates to a serial
  /// run through the pool machinery.
  int threads = 0;
  /// Permute the submission order (results still merge canonically).  Used
  /// by the determinism tests to prove output is order-independent.
  bool shuffle_submission = false;
  std::uint64_t shuffle_seed = 1;
};

/// One executed cell: its resolved spec, the simulation result, and the
/// host wall-clock time the cell took (timing is reporting-only and never
/// part of deterministic output).
struct [[nodiscard]] CellResult {
  CellSpec spec;
  core::RunResult result;
  /// Present iff the cell ran in service mode: the SLA report of the open
  /// job stream (result then carries app/strategy names, horizon as
  /// exec_seconds, and network totals for the sim backend).
  std::optional<svc::ServiceReport> service;
  double wall_seconds = 0.0;
};

/// A completed sweep.  `cells` is in canonical grid order —
/// cells[i].spec.index == i — regardless of thread count, completion
/// order, or submission order, which is what makes sweep output
/// reproducible byte-for-byte.
struct [[nodiscard]] SweepResult {
  std::vector<CellResult> cells;
  double wall_seconds = 0.0;  // whole sweep, host clock
  int threads = 1;
  /// Sum of per-cell wall times: the serial-equivalent cost, so
  /// speedup = cell_wall_sum / wall_seconds.
  [[nodiscard]] double cell_wall_sum() const;
};

/// Executes every cell of a grid, each in its own fresh Cluster + Runtime
/// (engine instances are independent, so cells parallelize with no shared
/// mutable state), and merges results in canonical order.
class Runner {
 public:
  explicit Runner(RunnerOptions options = {});

  [[nodiscard]] SweepResult run(const ExperimentGrid& grid) const;

  /// Reference implementation: a plain serial loop over the same cells
  /// with no pool involved.  The differential tests pin run() to this.
  [[nodiscard]] static SweepResult run_serial(const ExperimentGrid& grid);

  /// Executes a single cell (fresh cluster, one Runtime::run or
  /// run_single_loop).  Thread-safe for distinct cells.  When `pool` is
  /// non-null and the cell's cluster shards its engine (switched topology
  /// with engine_shards > 1), shard windows run on the pool — intra-cell
  /// parallelism sharing the same thread budget as cell-level parallelism.
  /// A null pool runs shard windows inline; either way the result is
  /// identical (the windowed engine is deterministic by construction).
  [[nodiscard]] static CellResult run_cell(const ExperimentGrid& grid, std::size_t index,
                                           Pool* pool = nullptr);

 private:
  RunnerOptions options_;
};

}  // namespace dlb::exp
