#include "exp/grid.hpp"

#include <sstream>
#include <stdexcept>

#include <algorithm>

#include "apps/mxm.hpp"
#include "apps/synthetic.hpp"
#include "apps/trfd.hpp"
#include "fault/plan.hpp"

namespace dlb::exp {

namespace {

/// Applies a --faults= preset to a parsed grid.  NoDLB cannot run armed
/// (DlbConfig::validate rejects it — no balancing rounds means no recovery
/// path), so it is dropped from the strategy axis rather than failing the
/// whole sweep.
void apply_faults(ExperimentGrid& grid, const support::Cli& cli) {
  const auto name = cli.get("faults", "");
  if (name.empty()) return;
  grid.config.faults = fault::FaultPlan::preset(name);
  if (grid.config.faults.armed()) {
    std::erase(grid.strategies, core::Strategy::kNoDlb);
  }
}

std::vector<std::string> split_commas(const std::string& spec) {
  std::vector<std::string> out;
  std::stringstream ss(spec);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

// std::stoi/stod ignore trailing junk, so "--procs=4x" used to run a P=4
// grid instead of failing; list items get the same full-consumption check
// as Cli::get_int/get_double.
int strict_int(const std::string& item, const char* flag) {
  std::size_t pos = 0;
  int value = 0;
  try {
    value = std::stoi(item, &pos);
  } catch (const std::exception&) {
    pos = 0;
  }
  if (item.empty() || pos != item.size()) {
    throw std::invalid_argument(std::string("--") + flag + ": '" + item +
                                "' is not a valid integer");
  }
  return value;
}

double strict_double(const std::string& item, const char* flag) {
  std::size_t pos = 0;
  double value = 0.0;
  try {
    value = std::stod(item, &pos);
  } catch (const std::exception&) {
    pos = 0;
  }
  if (item.empty() || pos != item.size()) {
    throw std::invalid_argument(std::string("--") + flag + ": '" + item +
                                "' is not a valid number");
  }
  return value;
}

/// Applies the topology/sharding flags shared by preset and custom grids:
/// --topology=shared,switched (axis), --rack-size, --shards.
void apply_topology(ExperimentGrid& grid, const support::Cli& cli) {
  if (cli.has("rack-size")) {
    grid.cluster_template.switched.rack_size = static_cast<int>(cli.get_int("rack-size", 32));
  }
  if (cli.has("shards")) {
    grid.cluster_template.engine_shards = static_cast<int>(cli.get_int("shards", 1));
  }
  const auto spec = cli.get("topology", "");
  if (spec.empty()) return;
  grid.topologies.clear();
  for (const auto& name : split_commas(spec)) {
    grid.topologies.push_back(net::parse_topology(name));
  }
}

core::Strategy strategy_from_label(const std::string& label) {
  if (label == "nodlb" || label == "none") return core::Strategy::kNoDlb;
  if (label == "gc") return core::Strategy::kGCDLB;
  if (label == "gd") return core::Strategy::kGDDLB;
  if (label == "lc") return core::Strategy::kLCDLB;
  if (label == "ld") return core::Strategy::kLDDLB;
  // Online re-customization; only valid on a service grid (validate()
  // rejects kAuto anywhere else).
  if (label == "online") return core::Strategy::kAuto;
  throw std::invalid_argument("parse_strategies: unknown strategy '" + label +
                              "' (expected nodlb|gc|gd|lc|ld|online)");
}

}  // namespace

void ExperimentGrid::validate() const {
  if (apps.empty()) throw std::invalid_argument("ExperimentGrid: no apps");
  if (procs.empty()) throw std::invalid_argument("ExperimentGrid: no processor counts");
  if (topologies.empty()) throw std::invalid_argument("ExperimentGrid: no topologies");
  if (strategies.empty()) throw std::invalid_argument("ExperimentGrid: no strategies");
  if (max_loads.empty()) throw std::invalid_argument("ExperimentGrid: no load amplitudes");
  if (seeds <= 0) throw std::invalid_argument("ExperimentGrid: seeds must be positive");
  for (const auto& a : apps) a.app.validate();
  for (const auto p : procs) {
    if (p <= 0) throw std::invalid_argument("ExperimentGrid: procs must be positive");
  }
  for (const auto s : strategies) {
    if (s == core::Strategy::kAuto && !service.armed) {
      throw std::invalid_argument(
          "ExperimentGrid: Strategy::kAuto is resolved by decision::Selector, not swept "
          "(the 'online' strategy label requires a service grid)");
    }
  }
  if (service.armed) {
    if (service.arrivals.empty()) {
      throw std::invalid_argument("ExperimentGrid: service mode needs an arrival axis");
    }
    for (const auto& a : service.arrivals) a.validate();
    if (service.rhos.empty()) {
      throw std::invalid_argument("ExperimentGrid: service mode needs an offered-load axis");
    }
    for (const auto rho : service.rhos) {
      if (!(rho > 0.0) || !(rho <= 1.25)) {
        throw std::invalid_argument("ExperimentGrid: --rate values must be in (0, 1.25]");
      }
    }
    if (service.jobs < 1) throw std::invalid_argument("ExperimentGrid: --jobs must be >= 1");
    service.mix.validate();
    service.hysteresis.validate();
    if (config.faults.armed()) {
      throw std::invalid_argument("ExperimentGrid: service mode does not support fault plans");
    }
    if (config.record_trace) {
      throw std::invalid_argument("ExperimentGrid: service mode does not record traces");
    }
    if (loop_index >= 0) {
      throw std::invalid_argument("ExperimentGrid: service mode admits whole jobs, not --loop");
    }
  }
}

std::size_t ExperimentGrid::cell_count() const noexcept {
  return apps.size() * procs.size() * topologies.size() * arrival_points() * rho_points() *
         tl_points() * max_loads.size() * strategies.size() * static_cast<std::size_t>(seeds);
}

CellSpec ExperimentGrid::cell(std::size_t index) const {
  if (index >= cell_count()) throw std::out_of_range("ExperimentGrid::cell: index");

  // Row-major decode: app, procs, topology, arrivals, rho, tl, max_load,
  // strategy, seed (innermost).  The service axes sit between topology and
  // tl; disarmed they have size 1 and divide out, keeping every
  // pre-service index.
  CellSpec c;
  c.index = index;
  std::size_t rest = index;
  c.seed_i = rest % static_cast<std::size_t>(seeds);
  rest /= static_cast<std::size_t>(seeds);
  c.strat_i = rest % strategies.size();
  rest /= strategies.size();
  c.load_i = rest % max_loads.size();
  rest /= max_loads.size();
  c.tl_i = rest % tl_points();
  rest /= tl_points();
  c.rho_i = rest % rho_points();
  rest /= rho_points();
  c.arr_i = rest % arrival_points();
  rest /= arrival_points();
  c.topo_i = rest % topologies.size();
  rest /= topologies.size();
  c.proc_i = rest % procs.size();
  rest /= procs.size();
  c.app_i = rest;

  const AppSpec& spec = apps[c.app_i];
  c.app_name = spec.name;
  c.tl_seconds = tl_seconds.empty() ? spec.default_tl_seconds : tl_seconds[c.tl_i];

  c.params = cluster_template;
  c.params.procs = procs[c.proc_i];
  c.params.topology = topologies[c.topo_i];
  c.params.base_ops_per_sec = spec.base_ops_per_sec;
  c.params.load.max_load = max_loads[c.load_i];
  c.params.load.persistence = sim::from_seconds(c.tl_seconds);
  c.params.external_load = max_loads[c.load_i] > 0;
  c.params.seed = seed0 + c.seed_i;

  c.config = config;
  c.config.strategy = strategies[c.strat_i];
  c.loop_index = loop_index;
  if (spec.weak_iters_per_proc > 0) {
    c.app_override = apps::make_uniform(
        static_cast<std::int64_t>(spec.weak_iters_per_proc) * c.params.procs,
        spec.weak_ops_per_iteration, spec.weak_bytes_per_iteration);
  }
  if (service.armed) {
    svc::ServiceParams sp;
    sp.jobs = service.jobs;
    sp.rho = service.rhos[c.rho_i];
    sp.arrival = service.arrivals[c.arr_i];
    sp.mix = service.mix;
    sp.load_variants = service.load_variants;
    sp.hysteresis = service.hysteresis;
    sp.backend = service.backend;
    if (c.config.strategy == core::Strategy::kAuto) {
      sp.online = true;
    } else {
      sp.strategy = c.config.strategy;
    }
    c.service = std::move(sp);
  }
  return c;
}

std::vector<core::Strategy> parse_strategies(const std::string& spec) {
  if (spec == "all") {
    return {core::Strategy::kNoDlb, core::Strategy::kGCDLB, core::Strategy::kGDDLB,
            core::Strategy::kLCDLB, core::Strategy::kLDDLB};
  }
  if (spec == "ranked") {
    std::vector<core::Strategy> out;
    for (int id = 0; id < core::kRankedStrategyCount; ++id) out.push_back(core::ranked_strategy(id));
    return out;
  }
  std::vector<core::Strategy> out;
  for (const auto& label : split_commas(spec)) out.push_back(strategy_from_label(label));
  if (out.empty()) throw std::invalid_argument("parse_strategies: empty spec");
  return out;
}

AppSpec make_app_spec(const std::string& name, const support::Cli& cli) {
  AppSpec spec;
  if (name == "mxm") {
    apps::MxmParams p;
    p.R = cli.get_int("R", 400);
    p.C = cli.get_int("C", 400);
    p.R2 = cli.get_int("R2", 400);
    spec.app = apps::make_mxm(p);
    spec.name = "mxm[R=" + std::to_string(p.R) + ",C=" + std::to_string(p.C) +
                ",R2=" + std::to_string(p.R2) + "]";
    spec.base_ops_per_sec = 3e6;
    spec.default_tl_seconds = 16.0;
  } else if (name == "trfd") {
    apps::TrfdParams p;
    p.n = static_cast<int>(cli.get_int("n", 30));
    spec.app = apps::make_trfd(p);
    spec.name = "trfd[n=" + std::to_string(p.n) + "]";
    spec.base_ops_per_sec = 1e6;
    spec.default_tl_seconds = 2.0;
  } else if (name == "uniform") {
    const auto iters = cli.get_int("iters", 400);
    const auto ops = cli.get_double("ops", 100e3);
    const auto bytes = cli.get_double("bytes", 1024.0);
    spec.app = apps::make_uniform(iters, ops, bytes);
    spec.name = "uniform[I=" + std::to_string(iters) + "]";
    spec.base_ops_per_sec = 20e6;
    spec.default_tl_seconds = 1.0;
  } else {
    throw std::invalid_argument("make_app_spec: unknown app '" + name +
                                "' (expected mxm|trfd|uniform)");
  }
  return spec;
}

namespace {

/// The paper's figure grids (EXPERIMENTS.md): app shapes, P and rates.
ExperimentGrid figure_grid(int figure, const support::Cli& cli) {
  ExperimentGrid grid;
  grid.strategies = parse_strategies("all");
  switch (figure) {
    case 5:
    case 6: {
      grid.procs = {figure == 5 ? 4 : 16};
      // Fig. 6 scales R so R/P stays at 100/200 (paper §6.2).
      const std::int64_t r_scale = figure == 5 ? 1 : 4;
      for (const auto& [r, c] : {std::pair<std::int64_t, std::int64_t>{400, 400},
                                 {400, 800},
                                 {800, 400},
                                 {800, 800}}) {
        AppSpec spec;
        const apps::MxmParams p{r * r_scale, c, 400};
        spec.app = apps::make_mxm(p);
        spec.name = "mxm[R=" + std::to_string(p.R) + ",C=" + std::to_string(p.C) +
                    ",R2=" + std::to_string(p.R2) + "]";
        spec.base_ops_per_sec = 3e6;
        spec.default_tl_seconds = 16.0;
        grid.apps.push_back(std::move(spec));
      }
      break;
    }
    case 7:
    case 8: {
      grid.procs = {figure == 7 ? 4 : 16};
      for (const int n : {30, 40, 50}) {
        AppSpec spec;
        spec.app = apps::make_trfd({n});
        spec.name = "trfd[n=" + std::to_string(n) + "]";
        spec.base_ops_per_sec = 1e6;
        spec.default_tl_seconds = 2.0;
        grid.apps.push_back(std::move(spec));
      }
      break;
    }
    default:
      throw std::invalid_argument("parse_grid: --figure must be 5, 6, 7, 8, scale or service");
  }
  grid.seeds = static_cast<int>(cli.get_int("seeds", 3));
  grid.seed0 = static_cast<std::uint64_t>(cli.get_int("seed0", 1000));
  return grid;
}

/// --figure=scale: the weak-scaling grid strategy x P x topology.  One
/// uniform app whose iteration count grows with P (fixed per-processor
/// work), both topologies side by side, centralized strategies only by
/// default — the distributed schemes broadcast profiles all-to-all every
/// round, O(P^2) frames, which at P >= 4k is the wall this grid exists to
/// show, not a point on it.
ExperimentGrid scale_grid(const support::Cli& cli) {
  ExperimentGrid grid;
  grid.strategies = parse_strategies(cli.get("strategies", "nodlb,gc"));
  grid.procs.clear();
  for (const auto& p : split_commas(cli.get("procs", "256,1024,4096"))) {
    grid.procs.push_back(strict_int(p, "procs"));
  }
  grid.topologies = {net::TopologyKind::kShared, net::TopologyKind::kSwitched};

  AppSpec spec;
  spec.weak_iters_per_proc = static_cast<int>(cli.get_int("iters-per-proc", 32));
  spec.weak_ops_per_iteration = cli.get_double("ops", 50e3);
  spec.weak_bytes_per_iteration = cli.get_double("bytes", 256.0);
  if (spec.weak_iters_per_proc <= 0) {
    throw std::invalid_argument("parse_grid: --iters-per-proc must be positive");
  }
  // Placeholder descriptor for validate(); every cell overrides it with its
  // own P-sized instance.
  spec.app = apps::make_uniform(spec.weak_iters_per_proc, spec.weak_ops_per_iteration,
                                spec.weak_bytes_per_iteration);
  spec.name = "weak[i/P=" + std::to_string(spec.weak_iters_per_proc) + "]";
  spec.base_ops_per_sec = 20e6;
  spec.default_tl_seconds = 1.0;
  grid.apps.push_back(std::move(spec));

  grid.seeds = static_cast<int>(cli.get_int("seeds", 1));
  grid.seed0 = static_cast<std::uint64_t>(cli.get_int("seed0", 1000));
  return grid;
}

/// Service flags are only meaningful on the service preset; anywhere else a
/// stray --arrivals would silently run a conventional sweep.
constexpr const char* kServiceFlags[] = {"arrivals", "rate",           "jobs", "hysteresis",
                                         "load-variants", "mix", "service-backend"};

void reject_service_flags(const support::Cli& cli) {
  for (const char* flag : kServiceFlags) {
    if (cli.has(flag)) {
      throw std::invalid_argument(std::string("parse_grid: --") + flag +
                                  " requires --figure=service");
    }
  }
}

/// Applies the service flag family to the armed preset grid.
void apply_service_flags(ExperimentGrid& grid, const support::Cli& cli) {
  auto& service = grid.service;
  service.armed = true;
  service.arrivals.clear();
  for (const auto& spec : split_commas(cli.get("arrivals", "poisson,bursty"))) {
    service.arrivals.push_back(svc::parse_arrival_spec(spec));
  }
  service.rhos.clear();
  for (const auto& rho : split_commas(cli.get("rate", "0.3,0.5,0.7,0.8,0.9,0.95"))) {
    service.rhos.push_back(strict_double(rho, "rate"));
  }
  service.jobs = static_cast<std::uint64_t>(cli.get_int("jobs", 1'000'000));
  const auto hysteresis = split_commas(cli.get("hysteresis", "0.05,3"));
  if (hysteresis.size() != 2) {
    throw std::invalid_argument("parse_grid: --hysteresis wants <margin>,<k>");
  }
  service.hysteresis.margin = strict_double(hysteresis[0], "hysteresis");
  service.hysteresis.k = strict_int(hysteresis[1], "hysteresis");
  service.load_variants = static_cast<int>(cli.get_int("load-variants", 8));
  service.mix = svc::JobMix::builtin(cli.get("mix", "default"));
  const auto backend = cli.get("service-backend", "model");
  if (backend == "model") {
    service.backend = svc::ServiceBackend::kModel;
  } else if (backend == "sim") {
    service.backend = svc::ServiceBackend::kSim;
  } else {
    throw std::invalid_argument("parse_grid: --service-backend must be model or sim");
  }
}

/// --figure=service: the open-stream grid latency vs. offered load rho x
/// strategy x arrival shape.  One placeholder app row names the job mix;
/// every cell admits >= --jobs loop jobs over virtual time through the
/// service layer instead of running one loop.
ExperimentGrid service_grid(const support::Cli& cli) {
  ExperimentGrid grid;
  grid.strategies = parse_strategies(cli.get("strategies", "gc,gd,lc,ld,online"));
  grid.procs.clear();
  for (const auto& p : split_commas(cli.get("procs", "16"))) {
    grid.procs.push_back(strict_int(p, "procs"));
  }
  apply_service_flags(grid, cli);

  AppSpec spec;
  // Placeholder descriptor for validate(); service cells admit per-class
  // loops from the mix, not this app.
  spec.app = apps::make_uniform(64, 100e3, 64.0);
  spec.name = "svc[" + grid.service.mix.name + "]";
  spec.base_ops_per_sec = 20e6;
  spec.default_tl_seconds = grid.service.mix.classes.front().tl_seconds;
  grid.apps.push_back(std::move(spec));

  grid.seeds = static_cast<int>(cli.get_int("seeds", 1));
  grid.seed0 = static_cast<std::uint64_t>(cli.get_int("seed0", 1000));
  return grid;
}

}  // namespace

ExperimentGrid parse_grid(const support::Cli& cli) {
  if (cli.has("figure")) {
    const auto figure = cli.get("figure", "5");
    if (figure == "service") {
      auto grid = service_grid(cli);
      apply_topology(grid, cli);
      apply_faults(grid, cli);
      grid.validate();
      return grid;
    }
    reject_service_flags(cli);
    auto grid = figure == "scale" ? scale_grid(cli)
                                  : figure_grid(strict_int(figure, "figure"), cli);
    apply_topology(grid, cli);
    apply_faults(grid, cli);
    grid.validate();
    return grid;
  }
  reject_service_flags(cli);

  ExperimentGrid grid;
  for (const auto& name : split_commas(cli.get("app", "mxm"))) {
    grid.apps.push_back(make_app_spec(name, cli));
  }
  grid.procs.clear();
  for (const auto& p : split_commas(cli.get("procs", "4"))) {
    grid.procs.push_back(strict_int(p, "procs"));
  }
  grid.strategies = parse_strategies(cli.get("strategies", "all"));
  for (const auto& tl : split_commas(cli.get("tl", ""))) {
    grid.tl_seconds.push_back(strict_double(tl, "tl"));
  }
  grid.max_loads.clear();
  for (const auto& ml : split_commas(cli.get("max-load", "5"))) {
    grid.max_loads.push_back(strict_int(ml, "max-load"));
  }
  grid.seeds = static_cast<int>(cli.get_int("seeds", 3));
  grid.seed0 = static_cast<std::uint64_t>(cli.get_int("seed0", 1000));
  grid.loop_index = static_cast<int>(cli.get_int("loop", -1));
  apply_topology(grid, cli);
  apply_faults(grid, cli);
  grid.validate();
  return grid;
}

}  // namespace dlb::exp
