#include "net/patterns.hpp"

#include <algorithm>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "net/network.hpp"
#include "sim/engine.hpp"
#include "sim/mailbox.hpp"
#include "sim/process.hpp"

namespace dlb::net {

namespace {

constexpr int kPatternTag = 7;

// The characterization measures the primitive send pattern (a pvm_send per
// destination, full sender overhead each) — the paper's §6.1 methodology.
// The DLB library's own broadcasts use the cheaper pack-once mcast path.
sim::Process root_sender(sim::Engine& engine, Network& network, std::vector<int> dsts,
                         std::size_t bytes, sim::SimTime* finished_at) {
  for (const int dst : dsts) {
    if (dst == 0) continue;
    co_await network.send(0, dst, kPatternTag, std::any{}, bytes);
  }
  *finished_at = engine.now();
}

sim::Process receiver(sim::Engine& engine, Network& network, sim::Mailbox& mailbox, int count,
                      sim::SimTime* finished_at) {
  for (int i = 0; i < count; ++i) {
    (void)co_await network.receive(mailbox, kPatternTag);
  }
  *finished_at = engine.now();
}

sim::Process sender_then_receiver(sim::Engine& engine, Network& network, sim::Mailbox& mailbox,
                                  int self, std::vector<int> dsts, std::size_t bytes,
                                  int recv_count, sim::SimTime* finished_at) {
  for (const int dst : dsts) {
    if (dst == self) continue;
    co_await network.send(self, dst, kPatternTag, std::any{}, bytes);
  }
  for (int i = 0; i < recv_count; ++i) {
    (void)co_await network.receive(mailbox, kPatternTag);
  }
  *finished_at = engine.now();
}

}  // namespace

const char* pattern_name(Pattern p) noexcept {
  switch (p) {
    case Pattern::kOneToAll:
      return "one-to-all";
    case Pattern::kAllToOne:
      return "all-to-one";
    case Pattern::kAllToAll:
      return "all-to-all";
  }
  return "?";
}

double alltoall_analytic(int procs, std::size_t bytes, const EthernetParams& params) {
  if (procs < 2) throw std::invalid_argument("alltoall_analytic: need at least 2 processors");
  const int last_round = procs - 1;  // every sender ships one frame per round
  const sim::SimTime o_s = params.sender_overhead;
  const sim::SimTime o_r = params.receiver_overhead;
  const sim::SimTime occ = params.medium_occupancy(bytes);
  const sim::SimTime prop = params.propagation;

  // B[j] = first medium grab of round j: every sender wakes at j*o_s, and
  // wake events pop in sender-id order, so the round's P reservations are
  // back to back from max(wake, medium free).
  std::vector<sim::SimTime> round_base(static_cast<std::size_t>(procs), 0);
  sim::SimTime medium_free = 0;
  for (int j = 1; j <= last_round; ++j) {
    const sim::SimTime wake = static_cast<sim::SimTime>(j) * o_s;
    round_base[static_cast<std::size_t>(j)] = wake > medium_free ? wake : medium_free;
    medium_free = round_base[static_cast<std::size_t>(j)] + static_cast<sim::SimTime>(procs) * occ;
  }

  // Receiver d consumes m = P-1 arrivals with the fold r_k = max(r_{k-1},
  // a_k) + o_r from r_0 = m*o_s (its own last send).  Closed form:
  // max(r_0 + m*o_r, max_k(a_k + (m-k+1)*o_r)); a_k is affine in k within
  // each round segment, so only segment endpoints can win.  Sender i's
  // round-j frame lands at B_j + (i+1)*occ + prop; lower-id senders (i < d)
  // hit d in round d at positions k = 1..d, higher-id ones (i > d) in round
  // d+1 at positions k = d+1..m with a_k = B_{d+1} + (k+1)*occ + prop.
  const sim::SimTime m = last_round;
  sim::SimTime finish = 0;
  for (int d = 0; d < procs; ++d) {
    sim::SimTime r = m * o_s + m * o_r;  // all arrivals early: pure unpacking
    const auto consider = [&r, m, o_r](sim::SimTime k, sim::SimTime arrival) {
      const sim::SimTime candidate = arrival + (m - k + 1) * o_r;
      if (candidate > r) r = candidate;
    };
    if (d >= 1) {
      const sim::SimTime base = round_base[static_cast<std::size_t>(d)] + prop;
      consider(1, base + occ);
      consider(d, base + static_cast<sim::SimTime>(d) * occ);
    }
    if (d <= procs - 2) {
      const sim::SimTime base = round_base[static_cast<std::size_t>(d) + 1] + prop;
      consider(d + 1, base + static_cast<sim::SimTime>(d + 2) * occ);
      consider(m, base + static_cast<sim::SimTime>(procs) * occ);
    }
    if (r > finish) finish = r;
  }
  return sim::to_seconds(finish);
}

double measure_pattern(Pattern pattern, int procs, std::size_t bytes,
                       const EthernetParams& params) {
  if (procs < 2) throw std::invalid_argument("measure_pattern: need at least 2 processors");
  if (pattern == Pattern::kAllToAll && procs > kAnalyticAllToAllThreshold) {
    return alltoall_analytic(procs, bytes, params);
  }

  sim::Engine engine;
  Network network(engine, params);
  std::vector<std::unique_ptr<sim::Mailbox>> mailboxes;
  mailboxes.reserve(static_cast<std::size_t>(procs));
  for (int i = 0; i < procs; ++i) {
    mailboxes.push_back(std::make_unique<sim::Mailbox>(engine));
    network.attach(i, *mailboxes.back());
  }

  std::vector<sim::SimTime> finished(static_cast<std::size_t>(procs), 0);
  std::vector<int> all_but_root(static_cast<std::size_t>(procs) - 1);
  std::iota(all_but_root.begin(), all_but_root.end(), 1);

  switch (pattern) {
    case Pattern::kOneToAll:
      engine.spawn(root_sender(engine, network, all_but_root, bytes, &finished[0]));
      for (int i = 1; i < procs; ++i) {
        engine.spawn(receiver(engine, network, *mailboxes[static_cast<std::size_t>(i)], 1,
                              &finished[static_cast<std::size_t>(i)]));
      }
      break;
    case Pattern::kAllToOne:
      engine.spawn(receiver(engine, network, *mailboxes[0], procs - 1, &finished[0]));
      for (int i = 1; i < procs; ++i) {
        engine.spawn(sender_then_receiver(engine, network, *mailboxes[static_cast<std::size_t>(i)],
                                          i, std::vector<int>{0}, bytes, 0,
                                          &finished[static_cast<std::size_t>(i)]));
      }
      break;
    case Pattern::kAllToAll:
      for (int i = 0; i < procs; ++i) {
        std::vector<int> dsts(static_cast<std::size_t>(procs));
        std::iota(dsts.begin(), dsts.end(), 0);
        engine.spawn(sender_then_receiver(engine, network, *mailboxes[static_cast<std::size_t>(i)],
                                          i, std::move(dsts), bytes, procs - 1,
                                          &finished[static_cast<std::size_t>(i)]));
      }
      break;
  }

  engine.run();
  const sim::SimTime last = *std::max_element(finished.begin(), finished.end());
  return sim::to_seconds(last);
}

}  // namespace dlb::net
