#include "net/ethernet.hpp"

#include <algorithm>

namespace dlb::net {

sim::SimTime Ethernet::transmit(std::size_t bytes, sim::SimTime ready_at) noexcept {
  const sim::SimTime occupancy = params_.medium_occupancy(bytes);
  const sim::SimTime start = std::max(ready_at, free_at_);
  free_at_ = start + occupancy;
  busy_time_ += occupancy;
  ++messages_;
  bytes_ += bytes;
  return free_at_ + params_.propagation;
}

}  // namespace dlb::net
