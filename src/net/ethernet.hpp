#pragma once

#include <cstddef>
#include <cstdint>

#include "net/params.hpp"
#include "sim/time.hpp"

namespace dlb::net {

/// The shared 10base-T segment: a FIFO, capacity-1 transmission medium.
/// Reservation is analytic (no coroutine round trip): a transmit handed over
/// at `ready_at` starts when the medium frees up and holds it for its
/// occupancy.  Contention between concurrent broadcasts is what makes the
/// all-to-all pattern quadratic — the effect the paper's global/local
/// trade-off rests on.
class Ethernet {
 public:
  explicit Ethernet(EthernetParams params) noexcept : params_(params) {}

  /// Reserves the medium for one message; returns its delivery time
  /// (transmission end + propagation).
  sim::SimTime transmit(std::size_t bytes, sim::SimTime ready_at) noexcept;

  [[nodiscard]] const EthernetParams& params() const noexcept { return params_; }
  [[nodiscard]] sim::SimTime busy_until() const noexcept { return free_at_; }
  [[nodiscard]] std::uint64_t messages_carried() const noexcept { return messages_; }
  [[nodiscard]] std::uint64_t bytes_carried() const noexcept { return bytes_; }
  [[nodiscard]] sim::SimTime total_busy_time() const noexcept { return busy_time_; }

 private:
  EthernetParams params_;
  sim::SimTime free_at_ = 0;
  sim::SimTime busy_time_ = 0;
  std::uint64_t messages_ = 0;
  std::uint64_t bytes_ = 0;
};

}  // namespace dlb::net
