#pragma once

#include <cstddef>

#include "sim/time.hpp"

namespace dlb::net {

/// Shared-medium Ethernet + PVM software-stack cost model (LogP-flavoured).
///
/// A message costs:
///   sender CPU          o_s   (pvm_pack + send syscall; occupies the sender)
///   medium occupancy    tau_m + bytes / bandwidth   (serialized, FIFO)
///   propagation         prop  (does not occupy the medium)
///   receiver CPU        o_r   (unpack; occupies the receiver at consume time)
///
/// Defaults are calibrated to the paper's measured PVM numbers (§6.1):
/// one small-message end-to-end latency  o_s + tau_m + prop + o_r = 2414.5 us,
/// and bandwidth 0.96 MB/s.  The split between the terms is chosen so the
/// measured pattern costs have the paper's Fig. 4 shape: one-to-all and
/// all-to-one linear in P, all-to-all quadratic and roughly 4-6x one-to-all
/// at P = 16.
struct EthernetParams {
  sim::SimTime sender_overhead = sim::from_micros(1000.0);    // o_s
  sim::SimTime receiver_overhead = sim::from_micros(1000.0);  // o_r
  sim::SimTime medium_overhead = sim::from_micros(400.0);     // tau_m
  sim::SimTime propagation = sim::from_micros(14.5);          // prop
  double bandwidth_bytes_per_sec = 0.96e6;                    // B
  /// Sender CPU per *additional* destination of a multicast, as a fraction
  /// of o_s: pvm_mcast packs the buffer once, so follow-up sends skip the
  /// packing and pay only the transmit syscall.
  double multicast_extra_fraction = 0.4;

  /// End-to-end latency of a `bytes`-sized message on an idle network.
  [[nodiscard]] sim::SimTime message_latency(std::size_t bytes) const noexcept {
    return sender_overhead + medium_occupancy(bytes) + propagation + receiver_overhead;
  }

  /// Time the shared medium is held by one `bytes`-sized message.
  [[nodiscard]] sim::SimTime medium_occupancy(std::size_t bytes) const noexcept {
    return medium_overhead +
           sim::from_seconds(static_cast<double>(bytes) / bandwidth_bytes_per_sec);
  }
};

/// Wire size of a DLB profile / instruction message (a handful of scalars
/// plus the PVM header).  Used consistently by protocols, characterization,
/// and the cost model.
inline constexpr std::size_t kControlMessageBytes = 64;

}  // namespace dlb::net
