#pragma once

#include <cstddef>
#include <vector>

#include "net/params.hpp"
#include "net/patterns.hpp"
#include "support/polyfit.hpp"

namespace dlb::net {

/// Fitted cost functions sigma(P) for the three patterns, in seconds, plus
/// the point-to-point latency and bandwidth — the complete "network
/// parameters" input of the cost model (§4.1).  The paper builds exactly this
/// off-line: measure each pattern for a range of P, then polyfit.
struct CollectiveCosts {
  support::Polynomial one_to_all;
  support::Polynomial all_to_one;
  support::Polynomial all_to_all;
  double latency_seconds = 0.0;    // single small-message end-to-end time (L)
  double bandwidth_bytes = 0.0;    // sustained point-to-point bandwidth (B)

  /// sigma for the centralized synchronization: one-to-all + all-to-one.
  [[nodiscard]] double sync_centralized(int procs) const;
  /// sigma for the distributed synchronization: one-to-all + all-to-all.
  [[nodiscard]] double sync_distributed(int procs) const;

  [[nodiscard]] double eval(Pattern pattern, int procs) const;
};

/// One measured sample for one pattern.
struct PatternSample {
  Pattern pattern{};
  int procs = 0;
  double seconds = 0.0;
};

/// Result of a characterization sweep: raw samples and fits (and their R^2).
struct Characterization {
  std::vector<PatternSample> samples;
  CollectiveCosts costs;
  double r2_one_to_all = 0.0;
  double r2_all_to_one = 0.0;
  double r2_all_to_all = 0.0;
};

/// Measures all three patterns for P = 2..max_procs with `bytes`-sized
/// messages and fits degree-`degree` polynomials (degree 2 captures the
/// quadratic all-to-all while staying honest for the linear patterns).
[[nodiscard]] Characterization characterize(const EthernetParams& params, int max_procs,
                                            std::size_t bytes = kControlMessageBytes,
                                            std::size_t degree = 2);

}  // namespace dlb::net
