#include "net/topology.hpp"

#include <stdexcept>

namespace dlb::net {

int rack_of(int station, int rack_size) noexcept { return station / rack_size; }

int rack_count(int stations, int rack_size) noexcept {
  return (stations + rack_size - 1) / rack_size;
}

int shard_of_rack(int rack, int racks, int shards) noexcept {
  return static_cast<int>(static_cast<long long>(rack) * shards / racks);
}

TopologyKind parse_topology(const std::string& name) {
  if (name == "shared") return TopologyKind::kShared;
  if (name == "switched") return TopologyKind::kSwitched;
  throw std::invalid_argument("unknown topology '" + name + "' (use shared|switched)");
}

const char* topology_name(TopologyKind kind) noexcept {
  return kind == TopologyKind::kShared ? "shared" : "switched";
}

}  // namespace dlb::net
