#pragma once

#include <cstddef>

#include "net/params.hpp"

namespace dlb::net {

/// The three communication patterns the paper characterizes off-line (§6.1,
/// Fig. 4) and uses in the strategies' synchronization cost (§4.2):
///   OneToAll : root -> everyone          (interrupt / instruction send)
///   AllToOne : everyone -> root          (profile send, centralized)
///   AllToAll : everyone -> everyone      (profile broadcast, distributed)
enum class Pattern { kOneToAll, kAllToOne, kAllToAll };

[[nodiscard]] const char* pattern_name(Pattern p) noexcept;

/// Runs one pattern among `procs` endpoints exchanging `bytes`-sized messages
/// on a fresh simulator and returns the completion time in seconds (the time
/// at which the last participant has consumed its last message).  This is the
/// simulated analogue of the paper's measurement runs.
[[nodiscard]] double measure_pattern(Pattern pattern, int procs, std::size_t bytes,
                                     const EthernetParams& params);

}  // namespace dlb::net
