#pragma once

#include <cstddef>

#include "net/params.hpp"

namespace dlb::net {

/// The three communication patterns the paper characterizes off-line (§6.1,
/// Fig. 4) and uses in the strategies' synchronization cost (§4.2):
///   OneToAll : root -> everyone          (interrupt / instruction send)
///   AllToOne : everyone -> root          (profile send, centralized)
///   AllToAll : everyone -> everyone      (profile broadcast, distributed)
enum class Pattern { kOneToAll, kAllToOne, kAllToAll };

[[nodiscard]] const char* pattern_name(Pattern p) noexcept;

/// Largest processor count measure_pattern simulates all-to-all event by
/// event; beyond it the closed form below is returned instead.  The two are
/// exactly equal (a differential test pins them together bit for bit), so
/// the threshold is purely a cost knob: the simulated exchange is O(P^2)
/// events while the closed form is O(P) arithmetic.
inline constexpr int kAnalyticAllToAllThreshold = 64;

/// Closed-form completion time of the all-to-all exchange, exactly equal to
/// the simulated measurement.  The simulated pattern is regular enough to
/// fold analytically: all P senders wake at multiples of o_s and reserve the
/// shared medium in sender-id order each round, so round j's first grab is
/// B_j = max(j*o_s, F_{j-1}) with F_j = B_j + P*occ, and receiver d's
/// arrivals form two affine-in-position segments (round d from lower-id
/// senders, round d+1 from higher-id ones).  The receive fold
/// r_k = max(r_{k-1}, a_k) + o_r then attains its maximum at a segment
/// endpoint, leaving O(1) candidates per receiver after the O(P) B_j sweep.
[[nodiscard]] double alltoall_analytic(int procs, std::size_t bytes,
                                       const EthernetParams& params);

/// Runs one pattern among `procs` endpoints exchanging `bytes`-sized messages
/// on a fresh simulator and returns the completion time in seconds (the time
/// at which the last participant has consumed its last message).  This is the
/// simulated analogue of the paper's measurement runs.
[[nodiscard]] double measure_pattern(Pattern pattern, int procs, std::size_t bytes,
                                     const EthernetParams& params);

}  // namespace dlb::net
