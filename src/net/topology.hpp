#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "sim/time.hpp"

namespace dlb::net {

/// Network topology of the simulated cluster.
///
///  - kShared: every workstation on one shared Ethernet segment (the paper's
///    testbed; the byte-identical default).
///  - kSwitched: racks of shared segments under a non-blocking crossbar
///    core — the hierarchical LAN that makes P = 4k-64k tractable.  A
///    cross-rack frame occupies its source rack segment, cuts through the
///    switch fabric (a fixed latency, no shared resource), then serializes
///    through the crossbar's output port for the destination rack and the
///    destination rack segment.
enum class TopologyKind { kShared, kSwitched };

/// Parameters of the switched/hierarchical topology.  Rack segments reuse
/// the EthernetParams cost model; the crossbar adds the three knobs below.
/// Defaults model an early switching fabric that is an order of magnitude
/// faster than the 10base-T segments it aggregates.
struct SwitchedParams {
  /// Workstations per rack segment (the last rack may be smaller).
  int rack_size = 32;
  /// Switch-fabric cut-through latency, source port to output port.  Also
  /// the engine's conservative lookahead: it is the minimum virtual latency
  /// of any cross-rack (hence any cross-shard) interaction.
  sim::SimTime cut_through = sim::from_micros(20.0);
  /// Per-frame overhead of an output port (header processing, arbitration).
  sim::SimTime port_overhead = sim::from_micros(5.0);
  /// Output-port serialization bandwidth.
  double port_bandwidth_bytes_per_sec = 100e6;

  /// Time a crossbar output port is held by one `bytes`-sized frame.
  [[nodiscard]] sim::SimTime port_occupancy(std::size_t bytes) const noexcept {
    return port_overhead +
           sim::from_seconds(static_cast<double>(bytes) / port_bandwidth_bytes_per_sec);
  }
};

/// One output port of the crossbar core: a FIFO, capacity-1 resource like a
/// rack segment, but with switch-port costs and no propagation term (the
/// fabric's flight time is already paid by cut_through).
class CrossbarPort {
 public:
  explicit CrossbarPort(SwitchedParams params) noexcept : params_(params) {}

  /// Reserves the port for one frame; returns when its last byte has left.
  sim::SimTime transmit(std::size_t bytes, sim::SimTime ready_at) noexcept {
    const sim::SimTime start = ready_at > free_at_ ? ready_at : free_at_;
    const sim::SimTime occupancy = params_.port_occupancy(bytes);
    free_at_ = start + occupancy;
    busy_time_ += occupancy;
    ++messages_;
    return free_at_;
  }

  [[nodiscard]] sim::SimTime busy_until() const noexcept { return free_at_; }
  [[nodiscard]] sim::SimTime total_busy_time() const noexcept { return busy_time_; }
  [[nodiscard]] std::uint64_t messages_carried() const noexcept { return messages_; }

 private:
  SwitchedParams params_;
  sim::SimTime free_at_ = 0;
  sim::SimTime busy_time_ = 0;
  std::uint64_t messages_ = 0;
};

/// Rack of a workstation: contiguous blocks of `rack_size` stations.
[[nodiscard]] int rack_of(int station, int rack_size) noexcept;

/// Number of racks needed for `stations` workstations (last rack may be
/// partial when rack_size does not divide stations).
[[nodiscard]] int rack_count(int stations, int rack_size) noexcept;

/// Engine shard owning a rack: contiguous balanced blocks (the same
/// `i * n / m` split the segment map uses), so racks — and therefore
/// workstations — of one shard are contiguous and block sizes differ by at
/// most one.  Requires 1 <= shards <= racks.
[[nodiscard]] int shard_of_rack(int rack, int racks, int shards) noexcept;

/// Parses "--topology=" values; throws std::invalid_argument on anything
/// but "shared" or "switched".
[[nodiscard]] TopologyKind parse_topology(const std::string& name);

[[nodiscard]] const char* topology_name(TopologyKind kind) noexcept;

}  // namespace dlb::net
