#include "net/characterize.hpp"

#include <stdexcept>

#include "sim/time.hpp"

namespace dlb::net {

double CollectiveCosts::eval(Pattern pattern, int procs) const {
  if (procs < 2) return 0.0;  // a "collective" among one processor is free
  const double p = static_cast<double>(procs);
  switch (pattern) {
    case Pattern::kOneToAll:
      return one_to_all(p);
    case Pattern::kAllToOne:
      return all_to_one(p);
    case Pattern::kAllToAll:
      return all_to_all(p);
  }
  return 0.0;
}

double CollectiveCosts::sync_centralized(int procs) const {
  return eval(Pattern::kOneToAll, procs) + eval(Pattern::kAllToOne, procs);
}

double CollectiveCosts::sync_distributed(int procs) const {
  return eval(Pattern::kOneToAll, procs) + eval(Pattern::kAllToAll, procs);
}

Characterization characterize(const EthernetParams& params, int max_procs, std::size_t bytes,
                              std::size_t degree) {
  if (max_procs < 3) throw std::invalid_argument("characterize: need max_procs >= 3");

  Characterization out;
  std::vector<double> procs_axis;
  std::vector<double> oa;
  std::vector<double> ao;
  std::vector<double> aa;
  for (int p = 2; p <= max_procs; ++p) {
    const double t_oa = measure_pattern(Pattern::kOneToAll, p, bytes, params);
    const double t_ao = measure_pattern(Pattern::kAllToOne, p, bytes, params);
    const double t_aa = measure_pattern(Pattern::kAllToAll, p, bytes, params);
    out.samples.push_back({Pattern::kOneToAll, p, t_oa});
    out.samples.push_back({Pattern::kAllToOne, p, t_ao});
    out.samples.push_back({Pattern::kAllToAll, p, t_aa});
    procs_axis.push_back(static_cast<double>(p));
    oa.push_back(t_oa);
    ao.push_back(t_ao);
    aa.push_back(t_aa);
  }

  out.costs.one_to_all = support::polyfit(procs_axis, oa, degree);
  out.costs.all_to_one = support::polyfit(procs_axis, ao, degree);
  out.costs.all_to_all = support::polyfit(procs_axis, aa, degree);
  out.r2_one_to_all = support::r_squared(out.costs.one_to_all, procs_axis, oa);
  out.r2_all_to_one = support::r_squared(out.costs.all_to_one, procs_axis, ao);
  out.r2_all_to_all = support::r_squared(out.costs.all_to_all, procs_axis, aa);

  out.costs.latency_seconds = sim::to_seconds(params.message_latency(1));
  out.costs.bandwidth_bytes = params.bandwidth_bytes_per_sec;
  return out;
}

}  // namespace dlb::net
