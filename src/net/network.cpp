#include "net/network.hpp"

#include <utility>

namespace dlb::net {

void Network::set_segments(int segments, std::vector<int> segment_of,
                           sim::SimTime bridge_latency) {
  if (segments < 1) throw std::invalid_argument("Network: segments < 1");
  if (messages_sent_ != 0) {
    throw std::logic_error("Network: set_segments after traffic started");
  }
  if (topology_ == TopologyKind::kSwitched) {
    throw std::logic_error("Network: set_segments excludes set_switched");
  }
  for (const int s : segment_of) {
    if (s < 0 || s >= segments) throw std::invalid_argument("Network: bad segment index");
  }
  segments_.clear();
  for (int s = 0; s < segments; ++s) segments_.emplace_back(params_);
  segment_of_ = std::move(segment_of);
  bridge_latency_ = bridge_latency;
}

void Network::set_switched(int procs, SwitchedParams params, int shards) {
  if (procs < 1) throw std::invalid_argument("Network: procs < 1");
  if (params.rack_size < 1) throw std::invalid_argument("Network: rack_size < 1");
  if (params.cut_through <= 0) {
    throw std::invalid_argument("Network: cut_through must be positive");
  }
  if (messages_sent() != 0) {
    throw std::logic_error("Network: set_switched after traffic started");
  }
  if (topology_ == TopologyKind::kSwitched) {
    throw std::logic_error("Network: topology already switched");
  }
  if (segments_.size() > 1 || !segment_of_.empty()) {
    throw std::logic_error("Network: set_switched excludes set_segments");
  }
  const int racks = rack_count(procs, params.rack_size);
  if (shards < 1 || shards > racks) {
    throw std::invalid_argument("Network: shards must be in [1, racks]");
  }
  topology_ = TopologyKind::kSwitched;
  switched_ = params;
  segments_.clear();
  for (int r = 0; r < racks; ++r) {
    segments_.emplace_back(params_);
    ports_.emplace_back(params);
  }
  segment_of_.resize(static_cast<std::size_t>(procs));
  for (int i = 0; i < procs; ++i) {
    segment_of_[static_cast<std::size_t>(i)] = rack_of(i, params.rack_size);
  }
  shard_of_rack_.resize(static_cast<std::size_t>(racks));
  for (int r = 0; r < racks; ++r) {
    shard_of_rack_[static_cast<std::size_t>(r)] = shard_of_rack(r, racks, shards);
  }
  ingress_counter_.assign(static_cast<std::size_t>(procs), 0);
  rack_counters_.assign(static_cast<std::size_t>(racks), RackCounters{});
}

int Network::segment_of(int id) const {
  if (segment_of_.empty()) return 0;
  if (id < 0 || static_cast<std::size_t>(id) >= segment_of_.size()) {
    throw std::invalid_argument("Network: endpoint without a segment");
  }
  return segment_of_[static_cast<std::size_t>(id)];
}

int Network::shard_of(int id) const {
  if (topology_ != TopologyKind::kSwitched) return 0;
  return shard_of_rack_[static_cast<std::size_t>(segment_of(id))];
}

void Network::attach(int id, sim::Mailbox& mailbox) {
  if (id < 0) throw std::invalid_argument("Network: negative endpoint id");
  if (static_cast<std::size_t>(id) >= mailboxes_.size()) {
    mailboxes_.resize(static_cast<std::size_t>(id) + 1, nullptr);
  }
  if (mailboxes_[static_cast<std::size_t>(id)] != nullptr) {
    throw std::invalid_argument("Network: endpoint id already attached");
  }
  mailboxes_[static_cast<std::size_t>(id)] = &mailbox;
}

sim::Task<void> Network::send(int src, int dst, int tag, std::any payload, std::size_t bytes,
                              double overhead_fraction, bool droppable) {
  if (dst < 0 || static_cast<std::size_t>(dst) >= mailboxes_.size() ||
      mailboxes_[static_cast<std::size_t>(dst)] == nullptr) {
    throw std::invalid_argument("Network: send to unattached endpoint");
  }
  if (topology_ == TopologyKind::kSwitched) {
    co_await send_switched(src, dst, tag, std::move(payload), bytes, overhead_fraction,
                           droppable);
    co_return;
  }
  sim::Message message;
  message.source = src;
  message.tag = tag;
  message.bytes = bytes;
  message.payload = std::move(payload);
  message.sent_at = engine_.now();

  // Sender CPU: pack + transmit syscall.
  co_await engine_.sleep_for(static_cast<sim::SimTime>(
      static_cast<double>(params_.sender_overhead) * overhead_fraction));

  const int src_segment = segment_of(src);
  const int dst_segment = segment_of(dst);
  sim::SimTime deliver_at =
      segments_[static_cast<std::size_t>(src_segment)].transmit(bytes, engine_.now());
  if (dst_segment != src_segment) {
    // Store-and-forward across the bridge, then the destination segment.
    deliver_at = segments_[static_cast<std::size_t>(dst_segment)].transmit(
        bytes, deliver_at + bridge_latency_);
    ++bridge_crossings_;
  }
  ++messages_sent_;
  bytes_sent_ += bytes;

  // Loss is decided after the medium reservation so a dropped frame costs
  // the wire exactly what a delivered one does.
  const bool dropped = drop_hook_ && drop_hook_(src, dst, tag, bytes, droppable);
  if (recorder_ != nullptr) {
    recorder_->message(src, dst, tag, bytes, message.sent_at, deliver_at, dropped);
  }
  if (dropped) {
    ++messages_dropped_;
    co_return;
  }

  sim::Mailbox* destination = mailboxes_[static_cast<std::size_t>(dst)];
  engine_.schedule_at(deliver_at, [destination, m = std::move(message)]() mutable {
    destination->deliver(std::move(m));
  });
}

sim::Task<void> Network::send_switched(int src, int dst, int tag, std::any payload,
                                       std::size_t bytes, double overhead_fraction,
                                       bool droppable) {
  sim::Message message;
  message.source = src;
  message.tag = tag;
  message.bytes = bytes;
  message.payload = std::move(payload);
  message.sent_at = engine_.now();

  // Sender CPU: pack + transmit syscall (identical to the shared path).
  co_await engine_.sleep_for(static_cast<sim::SimTime>(
      static_cast<double>(params_.sender_overhead) * overhead_fraction));

  const int src_rack = rack_of(src, switched_.rack_size);
  const int dst_rack = rack_of(dst, switched_.rack_size);
  RackCounters& counters = rack_counters_[static_cast<std::size_t>(src_rack)];
  if (src_rack == dst_rack) {
    // Intra-rack: the rack segment behaves exactly like the paper's shared
    // Ethernet, and the whole path stays on the sender's shard.
    const sim::SimTime deliver_at =
        segments_[static_cast<std::size_t>(src_rack)].transmit(bytes, engine_.now());
    ++counters.messages;
    counters.bytes += bytes;
    const bool dropped = drop_hook_ && drop_hook_(src, dst, tag, bytes, droppable);
    if (recorder_ != nullptr) {
      recorder_->message(src, dst, tag, bytes, message.sent_at, deliver_at, dropped);
    }
    if (dropped) {
      ++counters.dropped;
      co_return;
    }
    sim::Mailbox* destination = mailboxes_[static_cast<std::size_t>(dst)];
    engine_.schedule_at(deliver_at, [destination, m = std::move(message)]() mutable {
      destination->deliver(std::move(m));
    });
    co_return;
  }

  // Cross-rack: source segment, then the cut-through fabric hop — the one
  // and only cross-shard channel.
  const sim::SimTime wire_done =
      segments_[static_cast<std::size_t>(src_rack)].transmit(bytes, engine_.now());
  ++counters.messages;
  counters.bytes += bytes;
  ++counters.crossings;
  const bool dropped = drop_hook_ && drop_hook_(src, dst, tag, bytes, droppable);
  if (dropped) {
    // Garbled on the source wire: never reaches the fabric.
    ++counters.dropped;
    if (recorder_ != nullptr) {
      recorder_->message(src, dst, tag, bytes, message.sent_at, wire_done, true);
    }
    co_return;
  }

  // Canonical ingress key: bit 63 (orders after every same-time shard-local
  // event) | source station | per-source frame counter.  Both the key and
  // the ingress time derive only from source-side deterministic state, so
  // the destination shard pops fabric arrivals in the same order at any
  // shard count.
  std::uint32_t& frame_counter = ingress_counter_[static_cast<std::size_t>(src)];
  const std::uint64_t key =
      (std::uint64_t{1} << 63) |
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)) << 32) | frame_counter++;
  const int dst_shard = shard_of_rack_[static_cast<std::size_t>(dst_rack)];
  sim::Mailbox* destination = mailboxes_[static_cast<std::size_t>(dst)];
  engine_.schedule_ingress(
      dst_shard, wire_done + switched_.cut_through, key,
      [this, destination, dst_rack, src, dst, tag, m = std::move(message)]() mutable {
        // Runs on the destination rack's shard at fabric-egress time: the
        // crossbar output port serializes the frame onto the rack segment.
        const sim::SimTime port_done =
            ports_[static_cast<std::size_t>(dst_rack)].transmit(m.bytes, engine_.now());
        const sim::SimTime deliver_at =
            segments_[static_cast<std::size_t>(dst_rack)].transmit(m.bytes, port_done);
        if (recorder_ != nullptr) {
          recorder_->message(src, dst, tag, m.bytes, m.sent_at, deliver_at, false);
        }
        engine_.schedule_at(deliver_at, [destination, m2 = std::move(m)]() mutable {
          destination->deliver(std::move(m2));
        });
      });
}

sim::Task<void> Network::multicast(int src, std::span<const int> dsts, int tag,
                                   std::any payload, std::size_t bytes, bool droppable) {
  bool first = true;
  for (const int dst : dsts) {
    if (dst == src) continue;
    // pvm_mcast packs once: follow-up sends pay only a fraction of o_s.
    co_await send(src, dst, tag, payload, bytes,
                  first ? 1.0 : params_.multicast_extra_fraction, droppable);
    first = false;
  }
}

sim::Task<sim::Message> Network::receive(sim::Mailbox& mailbox, int tag, int source) {
  sim::Message message = co_await mailbox.receive(tag, source);
  // Receiver CPU: unpack.
  co_await engine_.sleep_for(params_.receiver_overhead);
  co_return message;
}

}  // namespace dlb::net
