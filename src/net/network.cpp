#include "net/network.hpp"

#include <utility>

namespace dlb::net {

void Network::set_segments(int segments, std::vector<int> segment_of,
                           sim::SimTime bridge_latency) {
  if (segments < 1) throw std::invalid_argument("Network: segments < 1");
  if (messages_sent_ != 0) {
    throw std::logic_error("Network: set_segments after traffic started");
  }
  for (const int s : segment_of) {
    if (s < 0 || s >= segments) throw std::invalid_argument("Network: bad segment index");
  }
  segments_.clear();
  for (int s = 0; s < segments; ++s) segments_.emplace_back(params_);
  segment_of_ = std::move(segment_of);
  bridge_latency_ = bridge_latency;
}

int Network::segment_of(int id) const {
  if (segment_of_.empty()) return 0;
  if (id < 0 || static_cast<std::size_t>(id) >= segment_of_.size()) {
    throw std::invalid_argument("Network: endpoint without a segment");
  }
  return segment_of_[static_cast<std::size_t>(id)];
}

void Network::attach(int id, sim::Mailbox& mailbox) {
  if (id < 0) throw std::invalid_argument("Network: negative endpoint id");
  if (static_cast<std::size_t>(id) >= mailboxes_.size()) {
    mailboxes_.resize(static_cast<std::size_t>(id) + 1, nullptr);
  }
  if (mailboxes_[static_cast<std::size_t>(id)] != nullptr) {
    throw std::invalid_argument("Network: endpoint id already attached");
  }
  mailboxes_[static_cast<std::size_t>(id)] = &mailbox;
}

sim::Task<void> Network::send(int src, int dst, int tag, std::any payload, std::size_t bytes,
                              double overhead_fraction, bool droppable) {
  if (dst < 0 || static_cast<std::size_t>(dst) >= mailboxes_.size() ||
      mailboxes_[static_cast<std::size_t>(dst)] == nullptr) {
    throw std::invalid_argument("Network: send to unattached endpoint");
  }
  sim::Message message;
  message.source = src;
  message.tag = tag;
  message.bytes = bytes;
  message.payload = std::move(payload);
  message.sent_at = engine_.now();

  // Sender CPU: pack + transmit syscall.
  co_await engine_.sleep_for(static_cast<sim::SimTime>(
      static_cast<double>(params_.sender_overhead) * overhead_fraction));

  const int src_segment = segment_of(src);
  const int dst_segment = segment_of(dst);
  sim::SimTime deliver_at =
      segments_[static_cast<std::size_t>(src_segment)].transmit(bytes, engine_.now());
  if (dst_segment != src_segment) {
    // Store-and-forward across the bridge, then the destination segment.
    deliver_at = segments_[static_cast<std::size_t>(dst_segment)].transmit(
        bytes, deliver_at + bridge_latency_);
    ++bridge_crossings_;
  }
  ++messages_sent_;
  bytes_sent_ += bytes;

  // Loss is decided after the medium reservation so a dropped frame costs
  // the wire exactly what a delivered one does.
  const bool dropped = drop_hook_ && drop_hook_(src, dst, tag, bytes, droppable);
  if (recorder_ != nullptr) {
    recorder_->message(src, dst, tag, bytes, message.sent_at, deliver_at, dropped);
  }
  if (dropped) {
    ++messages_dropped_;
    co_return;
  }

  sim::Mailbox* destination = mailboxes_[static_cast<std::size_t>(dst)];
  engine_.schedule_at(deliver_at, [destination, m = std::move(message)]() mutable {
    destination->deliver(std::move(m));
  });
}

sim::Task<void> Network::multicast(int src, std::span<const int> dsts, int tag,
                                   std::any payload, std::size_t bytes, bool droppable) {
  bool first = true;
  for (const int dst : dsts) {
    if (dst == src) continue;
    // pvm_mcast packs once: follow-up sends pay only a fraction of o_s.
    co_await send(src, dst, tag, payload, bytes,
                  first ? 1.0 : params_.multicast_extra_fraction, droppable);
    first = false;
  }
}

sim::Task<sim::Message> Network::receive(sim::Mailbox& mailbox, int tag, int source) {
  sim::Message message = co_await mailbox.receive(tag, source);
  // Receiver CPU: unpack.
  co_await engine_.sleep_for(params_.receiver_overhead);
  co_return message;
}

}  // namespace dlb::net
