#pragma once

#include <any>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <stdexcept>
#include <vector>

#include "net/ethernet.hpp"
#include "net/params.hpp"
#include "net/topology.hpp"
#include "obs/recorder.hpp"
#include "sim/engine.hpp"
#include "sim/mailbox.hpp"
#include "sim/task.hpp"

namespace dlb::net {

/// PVM-like message layer over one or more shared Ethernet segments.
/// Endpoints (workstations) register a mailbox under an integer id; `send`
/// models the sender's CPU overhead, medium contention, and asynchronous
/// delivery; `receive` models the receiver-side unpack overhead at consume
/// time.
///
/// Topology (§4.1 lists it as a network parameter; the paper itself assumes
/// full uniform connectivity, which is the default here): endpoints may be
/// assigned to segments via `set_segments`.  An intra-segment message
/// occupies only its segment; an inter-segment message occupies the source
/// segment, then the destination segment, plus a store-and-forward bridge
/// latency — the classic two-Ethernets-with-a-bridge department LAN.
///
/// `set_switched` selects the hierarchical topology instead: one segment per
/// rack under a crossbar core (see TopologyKind).  A cross-rack frame takes
/// source segment → cut-through fabric → destination rack's crossbar output
/// port → destination segment.  The fabric hop is the engine's cross-shard
/// ingress channel: its timestamp and sequence key depend only on
/// source-side deterministic state, which is what keeps a sharded run
/// bit-identical to an unsharded one.  All per-frame mutable state on the
/// path (source segment, sender counters; output port, destination segment)
/// belongs to the source resp. destination rack's shard, so switched traffic
/// is data-race-free under the windowed parallel engine.
class Network {
 public:
  Network(sim::Engine& engine, EthernetParams params)
      : engine_(engine), params_(params) {
    segments_.emplace_back(params);
  }
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Splits the network into `segments` Ethernet segments; `segment_of[id]`
  /// maps each endpoint.  Must be called before traffic flows.  Pass
  /// `bridge_latency` for the store-and-forward hop between segments.
  void set_segments(int segments, std::vector<int> segment_of,
                    sim::SimTime bridge_latency = sim::from_micros(500.0));

  /// Selects the switched/hierarchical topology for `procs` endpoints: one
  /// shared segment per rack of `params.rack_size` stations under a crossbar
  /// core.  `shards` is the engine's shard count (racks map onto shards in
  /// contiguous balanced blocks); pass 1 when the engine is unsharded.  Must
  /// be called before traffic flows and excludes `set_segments`.
  void set_switched(int procs, SwitchedParams params, int shards);

  /// Registers `mailbox` as endpoint `id` (ids must be dense from 0).
  void attach(int id, sim::Mailbox& mailbox);

  [[nodiscard]] int endpoints() const noexcept { return static_cast<int>(mailboxes_.size()); }

  /// Decides whether a frame is lost after occupying the medium.  Installed
  /// by the fault layer; `droppable` is the *sender's* marking — protocols
  /// flag first-attempt messages droppable and retransmissions/acks not, so
  /// random loss cannot defeat bounded retry.  Frames to (or from) dead
  /// stations are dropped regardless of the marking.
  using DropHook = std::function<bool(int src, int dst, int tag, std::size_t bytes,
                                      bool droppable)>;

  /// Installs (or clears, with an empty function) the loss hook.  When no
  /// hook is set, send takes the exact pre-fault code path.
  void set_drop_hook(DropHook hook) { drop_hook_ = std::move(hook); }

  /// Observability: when set, every frame is recorded (src, dst, tag, size,
  /// send and delivery times, loss) at the moment the medium reservation is
  /// made.  Null (the default) keeps the exact unobserved code path — the
  /// same arming discipline as the drop hook.
  void set_recorder(obs::Recorder* recorder) noexcept { recorder_ = recorder; }

  /// Sends one message.  Occupies the *calling coroutine* (the sender's CPU)
  /// for o_s, then hands the frame to the medium and returns — delivery is
  /// asynchronous, like pvm_send.  `overhead_fraction` scales the sender CPU
  /// cost (1.0 for a standalone send; less for multicast follow-ups).  A
  /// frame the drop hook claims still occupies the medium and counts in the
  /// traffic totals (the collision/garble happens on the wire); only its
  /// delivery is suppressed.
  [[nodiscard]] sim::Task<void> send(int src, int dst, int tag, std::any payload,
                                     std::size_t bytes, double overhead_fraction = 1.0,
                                     bool droppable = true);

  /// Sends to every id in `dsts` (sequential sender-side, like a pvm_mcast
  /// loop).  The payload is copied per destination.
  [[nodiscard]] sim::Task<void> multicast(int src, std::span<const int> dsts, int tag,
                                          std::any payload, std::size_t bytes,
                                          bool droppable = true);

  /// Receives from `mailbox` paying the receiver-side overhead o_r.
  [[nodiscard]] sim::Task<sim::Message> receive(sim::Mailbox& mailbox, int tag = sim::kAnyTag,
                                                int source = sim::kAnySource);

  [[nodiscard]] const EthernetParams& params() const noexcept { return params_; }
  [[nodiscard]] TopologyKind topology() const noexcept { return topology_; }
  [[nodiscard]] const SwitchedParams& switched_params() const noexcept { return switched_; }
  [[nodiscard]] const Ethernet& medium(int segment = 0) const {
    return segments_.at(static_cast<std::size_t>(segment));
  }
  [[nodiscard]] const CrossbarPort& port(int rack) const {
    return ports_.at(static_cast<std::size_t>(rack));
  }
  [[nodiscard]] int segments() const noexcept { return static_cast<int>(segments_.size()); }
  [[nodiscard]] int segment_of(int id) const;
  /// Engine shard owning endpoint `id` (0 when unsharded or shared).
  [[nodiscard]] int shard_of(int id) const;

  // Traffic totals.  Under the switched topology the per-frame increments go
  // to the sender's rack row (one writer per rack, so the counters stay
  // race-free under the sharded engine); the accessors sum the rows.
  [[nodiscard]] std::uint64_t messages_sent() const noexcept {
    return messages_sent_ + rack_sum(&RackCounters::messages);
  }
  [[nodiscard]] std::uint64_t bytes_sent() const noexcept {
    return bytes_sent_ + rack_sum(&RackCounters::bytes);
  }
  /// Inter-segment bridge hops (shared) or cross-rack fabric hops (switched).
  [[nodiscard]] std::uint64_t bridge_crossings() const noexcept {
    return bridge_crossings_ + rack_sum(&RackCounters::crossings);
  }
  [[nodiscard]] std::uint64_t messages_dropped() const noexcept {
    return messages_dropped_ + rack_sum(&RackCounters::dropped);
  }

 private:
  struct RackCounters {
    std::uint64_t messages = 0;
    std::uint64_t bytes = 0;
    std::uint64_t crossings = 0;
    std::uint64_t dropped = 0;
  };

  [[nodiscard]] std::uint64_t rack_sum(std::uint64_t RackCounters::* field) const noexcept {
    std::uint64_t total = 0;
    for (const RackCounters& rc : rack_counters_) total += rc.*field;
    return total;
  }

  [[nodiscard]] sim::Task<void> send_switched(int src, int dst, int tag, std::any payload,
                                              std::size_t bytes, double overhead_fraction,
                                              bool droppable);

  sim::Engine& engine_;
  EthernetParams params_;
  std::vector<Ethernet> segments_;
  std::vector<int> segment_of_;  // empty: everyone on segment 0
  sim::SimTime bridge_latency_ = 0;
  std::vector<sim::Mailbox*> mailboxes_;
  DropHook drop_hook_;
  obs::Recorder* recorder_ = nullptr;
  std::uint64_t messages_sent_ = 0;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t bridge_crossings_ = 0;
  std::uint64_t messages_dropped_ = 0;

  // Switched-topology state (empty under kShared).
  TopologyKind topology_ = TopologyKind::kShared;
  SwitchedParams switched_;
  std::vector<CrossbarPort> ports_;      // crossbar output port per rack
  std::vector<int> shard_of_rack_;       // rack -> engine shard
  std::vector<std::uint32_t> ingress_counter_;  // per-source canonical frame counter
  std::vector<RackCounters> rack_counters_;     // per source rack
};

}  // namespace dlb::net
