#pragma once

#include <any>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <stdexcept>
#include <vector>

#include "net/ethernet.hpp"
#include "net/params.hpp"
#include "obs/recorder.hpp"
#include "sim/engine.hpp"
#include "sim/mailbox.hpp"
#include "sim/task.hpp"

namespace dlb::net {

/// PVM-like message layer over one or more shared Ethernet segments.
/// Endpoints (workstations) register a mailbox under an integer id; `send`
/// models the sender's CPU overhead, medium contention, and asynchronous
/// delivery; `receive` models the receiver-side unpack overhead at consume
/// time.
///
/// Topology (§4.1 lists it as a network parameter; the paper itself assumes
/// full uniform connectivity, which is the default here): endpoints may be
/// assigned to segments via `set_segments`.  An intra-segment message
/// occupies only its segment; an inter-segment message occupies the source
/// segment, then the destination segment, plus a store-and-forward bridge
/// latency — the classic two-Ethernets-with-a-bridge department LAN.
class Network {
 public:
  Network(sim::Engine& engine, EthernetParams params)
      : engine_(engine), params_(params) {
    segments_.emplace_back(params);
  }
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Splits the network into `segments` Ethernet segments; `segment_of[id]`
  /// maps each endpoint.  Must be called before traffic flows.  Pass
  /// `bridge_latency` for the store-and-forward hop between segments.
  void set_segments(int segments, std::vector<int> segment_of,
                    sim::SimTime bridge_latency = sim::from_micros(500.0));

  /// Registers `mailbox` as endpoint `id` (ids must be dense from 0).
  void attach(int id, sim::Mailbox& mailbox);

  [[nodiscard]] int endpoints() const noexcept { return static_cast<int>(mailboxes_.size()); }

  /// Decides whether a frame is lost after occupying the medium.  Installed
  /// by the fault layer; `droppable` is the *sender's* marking — protocols
  /// flag first-attempt messages droppable and retransmissions/acks not, so
  /// random loss cannot defeat bounded retry.  Frames to (or from) dead
  /// stations are dropped regardless of the marking.
  using DropHook = std::function<bool(int src, int dst, int tag, std::size_t bytes,
                                      bool droppable)>;

  /// Installs (or clears, with an empty function) the loss hook.  When no
  /// hook is set, send takes the exact pre-fault code path.
  void set_drop_hook(DropHook hook) { drop_hook_ = std::move(hook); }

  /// Observability: when set, every frame is recorded (src, dst, tag, size,
  /// send and delivery times, loss) at the moment the medium reservation is
  /// made.  Null (the default) keeps the exact unobserved code path — the
  /// same arming discipline as the drop hook.
  void set_recorder(obs::Recorder* recorder) noexcept { recorder_ = recorder; }

  /// Sends one message.  Occupies the *calling coroutine* (the sender's CPU)
  /// for o_s, then hands the frame to the medium and returns — delivery is
  /// asynchronous, like pvm_send.  `overhead_fraction` scales the sender CPU
  /// cost (1.0 for a standalone send; less for multicast follow-ups).  A
  /// frame the drop hook claims still occupies the medium and counts in the
  /// traffic totals (the collision/garble happens on the wire); only its
  /// delivery is suppressed.
  [[nodiscard]] sim::Task<void> send(int src, int dst, int tag, std::any payload,
                                     std::size_t bytes, double overhead_fraction = 1.0,
                                     bool droppable = true);

  /// Sends to every id in `dsts` (sequential sender-side, like a pvm_mcast
  /// loop).  The payload is copied per destination.
  [[nodiscard]] sim::Task<void> multicast(int src, std::span<const int> dsts, int tag,
                                          std::any payload, std::size_t bytes,
                                          bool droppable = true);

  /// Receives from `mailbox` paying the receiver-side overhead o_r.
  [[nodiscard]] sim::Task<sim::Message> receive(sim::Mailbox& mailbox, int tag = sim::kAnyTag,
                                                int source = sim::kAnySource);

  [[nodiscard]] const EthernetParams& params() const noexcept { return params_; }
  [[nodiscard]] const Ethernet& medium(int segment = 0) const {
    return segments_.at(static_cast<std::size_t>(segment));
  }
  [[nodiscard]] int segments() const noexcept { return static_cast<int>(segments_.size()); }
  [[nodiscard]] int segment_of(int id) const;
  [[nodiscard]] std::uint64_t messages_sent() const noexcept { return messages_sent_; }
  [[nodiscard]] std::uint64_t bytes_sent() const noexcept { return bytes_sent_; }
  [[nodiscard]] std::uint64_t bridge_crossings() const noexcept { return bridge_crossings_; }
  [[nodiscard]] std::uint64_t messages_dropped() const noexcept { return messages_dropped_; }

 private:
  sim::Engine& engine_;
  EthernetParams params_;
  std::vector<Ethernet> segments_;
  std::vector<int> segment_of_;  // empty: everyone on segment 0
  sim::SimTime bridge_latency_ = 0;
  std::vector<sim::Mailbox*> mailboxes_;
  DropHook drop_hook_;
  obs::Recorder* recorder_ = nullptr;
  std::uint64_t messages_sent_ = 0;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t bridge_crossings_ = 0;
  std::uint64_t messages_dropped_ = 0;
};

}  // namespace dlb::net
