#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.hpp"
#include "support/rng.hpp"

namespace dlb::load {

/// Parameters of the discrete random external-load function (paper §4.1):
/// every `persistence` (t_l) interval the load level is redrawn uniformly
/// from {0, 1, ..., max_load} (m_l).  The paper fixes m_l = 5 in all runs.
struct LoadParams {
  int max_load = 5;                                   // m_l
  sim::SimTime persistence = sim::from_seconds(1.0);  // t_l
};

/// One discrete random load function l_i(k) (Fig. 2): a step function over
/// persistence blocks, lazily generated from a seeded stream and cached so
/// that both the run-time system and the cost model observe the *same*
/// realization.  The effective speed of a processor with bare speed S under
/// load l is S / (l + 1).
class LoadFunction {
 public:
  LoadFunction(LoadParams params, support::Rng rng);

  /// Scripted load: the first blocks take the given levels, after which the
  /// last level persists forever.  Used for tests and dedicated-machine
  /// baselines where the load realization must be exact.
  LoadFunction(LoadParams params, std::vector<int> scripted_levels);

  /// Load level during the block containing virtual time `t` (t >= 0).
  [[nodiscard]] int level_at(sim::SimTime t);

  /// Load level of block index k (blocks are [k*t_l, (k+1)*t_l)).
  [[nodiscard]] int level_of_block(std::int64_t k);

  struct Segment {
    int level;
    sim::SimTime begin;
    sim::SimTime end;
  };
  /// The constant-load segment containing `t`.
  [[nodiscard]] Segment segment_at(sim::SimTime t);

  /// Slowdown factor l(t) + 1 (>= 1).
  [[nodiscard]] double slowdown_at(sim::SimTime t) { return 1.0 + level_at(t); }

  /// Effective load mu over the window [t0, t1]: the paper's §4.2 definition
  /// generalized to exact time weighting —
  ///   mu = (t1 - t0) / integral_{t0}^{t1} dt / (l(t) + 1),
  /// so that the average effective speed over the window is S / mu.
  /// For block-aligned windows this equals the paper's
  ///   (b - a + 1) / sum_{k=a}^{b} 1/(l(k)+1).
  ///
  /// Interior whole blocks are served from a cached prefix sum of 1/(l(k)+1),
  /// so a window query costs O(1) once its blocks are generated — the cost
  /// model issues thousands of overlapping window queries per prediction and
  /// would otherwise re-walk the same blocks every time.
  [[nodiscard]] double effective_load(sim::SimTime t0, sim::SimTime t1);

  /// The paper's literal block formula with a = ceil(t0/t_l), b = ceil(t1/t_l).
  /// O(1) amortized via the same prefix sum.
  [[nodiscard]] double effective_load_blocks(sim::SimTime t0, sim::SimTime t1);

  /// Reference implementations that re-walk every block; the prefix-summed
  /// fast paths are differential-tested against these.
  [[nodiscard]] double effective_load_naive(sim::SimTime t0, sim::SimTime t1);
  [[nodiscard]] double effective_load_blocks_naive(sim::SimTime t0, sim::SimTime t1);

  [[nodiscard]] const LoadParams& params() const noexcept { return params_; }

  /// Levels generated so far (grows as queried).
  [[nodiscard]] const std::vector<int>& trace() const noexcept { return levels_; }

 private:
  void ensure_generated(std::int64_t block);

  LoadParams params_;
  support::Rng rng_;
  std::vector<int> levels_;
  // prefix_inv_[k] = sum_{j<k} 1/(l(j)+1); maintained alongside levels_.
  std::vector<double> prefix_inv_;
  bool scripted_ = false;
};

/// A constant load function (level fixed for all time) — the degenerate case
/// used in tests and in "dedicated machine" baselines.
[[nodiscard]] LoadFunction constant_load(int level, sim::SimTime persistence);

}  // namespace dlb::load
