#include "load/load_function.hpp"

#include <algorithm>
#include <stdexcept>

namespace dlb::load {

LoadFunction::LoadFunction(LoadParams params, support::Rng rng)
    : params_(params), rng_(rng), prefix_inv_{0.0} {
  if (params_.max_load < 0) throw std::invalid_argument("LoadFunction: negative max_load");
  if (params_.persistence <= 0) throw std::invalid_argument("LoadFunction: persistence must be > 0");
}

LoadFunction::LoadFunction(LoadParams params, std::vector<int> scripted_levels)
    : params_(params), rng_(0), levels_(std::move(scripted_levels)), scripted_(true) {
  if (params_.persistence <= 0) throw std::invalid_argument("LoadFunction: persistence must be > 0");
  if (levels_.empty()) throw std::invalid_argument("LoadFunction: empty script");
  prefix_inv_.reserve(levels_.size() + 1);
  prefix_inv_.push_back(0.0);
  for (const int level : levels_) {
    if (level < 0) throw std::invalid_argument("LoadFunction: negative scripted level");
    prefix_inv_.push_back(prefix_inv_.back() + 1.0 / (1.0 + level));
  }
}

void LoadFunction::ensure_generated(std::int64_t block) {
  while (static_cast<std::int64_t>(levels_.size()) <= block) {
    levels_.push_back(scripted_ ? levels_.back()
                                : static_cast<int>(rng_.uniform_int(0, params_.max_load)));
    prefix_inv_.push_back(prefix_inv_.back() + 1.0 / (1.0 + levels_.back()));
  }
}

int LoadFunction::level_of_block(std::int64_t k) {
  if (k < 0) throw std::invalid_argument("LoadFunction: negative block index");
  ensure_generated(k);
  return levels_[static_cast<std::size_t>(k)];
}

int LoadFunction::level_at(sim::SimTime t) {
  if (t < 0) throw std::invalid_argument("LoadFunction: negative time");
  return level_of_block(t / params_.persistence);
}

LoadFunction::Segment LoadFunction::segment_at(sim::SimTime t) {
  const std::int64_t k = t / params_.persistence;
  return Segment{level_of_block(k), k * params_.persistence, (k + 1) * params_.persistence};
}

double LoadFunction::effective_load(sim::SimTime t0, sim::SimTime t1) {
  if (t1 < t0) throw std::invalid_argument("LoadFunction: reversed window");
  if (t0 < 0) throw std::invalid_argument("LoadFunction: negative time");
  if (t1 == t0) return slowdown_at(t0);
  const std::int64_t first = t0 / params_.persistence;
  const std::int64_t last = (t1 - 1) / params_.persistence;  // block containing t1's last ns
  ensure_generated(last);
  double integral;  // of 1/(l+1) dt, in seconds
  if (first == last) {
    integral = sim::to_seconds(t1 - t0) / (1.0 + levels_[static_cast<std::size_t>(first)]);
  } else {
    // Partial edge blocks walked directly; interior whole blocks in O(1)
    // from the prefix sum.
    integral =
        sim::to_seconds((first + 1) * params_.persistence - t0) /
            (1.0 + levels_[static_cast<std::size_t>(first)]) +
        sim::to_seconds(t1 - last * params_.persistence) /
            (1.0 + levels_[static_cast<std::size_t>(last)]);
    if (last - first > 1) {
      integral += sim::to_seconds(params_.persistence) *
                  (prefix_inv_[static_cast<std::size_t>(last)] -
                   prefix_inv_[static_cast<std::size_t>(first) + 1]);
    }
  }
  return sim::to_seconds(t1 - t0) / integral;
}

double LoadFunction::effective_load_blocks(sim::SimTime t0, sim::SimTime t1) {
  if (t1 < t0) throw std::invalid_argument("LoadFunction: reversed window");
  // a = ceil(t0 / t_l), b = ceil(t1 / t_l), per the paper's §4.2.
  const auto ceil_div = [](sim::SimTime num, sim::SimTime den) {
    return (num + den - 1) / den;
  };
  const std::int64_t a = ceil_div(t0, params_.persistence);
  const std::int64_t b = std::max(ceil_div(t1, params_.persistence), a);
  ensure_generated(b);
  const double inv_sum = prefix_inv_[static_cast<std::size_t>(b) + 1] -
                         prefix_inv_[static_cast<std::size_t>(a)];
  return static_cast<double>(b - a + 1) / inv_sum;
}

double LoadFunction::effective_load_naive(sim::SimTime t0, sim::SimTime t1) {
  if (t1 < t0) throw std::invalid_argument("LoadFunction: reversed window");
  if (t1 == t0) return slowdown_at(t0);
  const std::int64_t first = t0 / params_.persistence;
  const std::int64_t last = (t1 - 1) / params_.persistence;
  double integral = 0.0;
  for (std::int64_t k = first; k <= last; ++k) {
    const sim::SimTime begin = std::max(t0, k * params_.persistence);
    const sim::SimTime end = std::min(t1, (k + 1) * params_.persistence);
    integral += sim::to_seconds(end - begin) / (1.0 + level_of_block(k));
  }
  return sim::to_seconds(t1 - t0) / integral;
}

double LoadFunction::effective_load_blocks_naive(sim::SimTime t0, sim::SimTime t1) {
  if (t1 < t0) throw std::invalid_argument("LoadFunction: reversed window");
  const auto ceil_div = [](sim::SimTime num, sim::SimTime den) {
    return (num + den - 1) / den;
  };
  const std::int64_t a = ceil_div(t0, params_.persistence);
  const std::int64_t b = std::max(ceil_div(t1, params_.persistence), a);
  double inv_sum = 0.0;
  for (std::int64_t k = a; k <= b; ++k) inv_sum += 1.0 / (1.0 + level_of_block(k));
  return static_cast<double>(b - a + 1) / inv_sum;
}

LoadFunction constant_load(int level, sim::SimTime persistence) {
  return LoadFunction(LoadParams{level, persistence}, std::vector<int>{level});
}

}  // namespace dlb::load
