#include "emu/channel.hpp"

namespace dlb::emu {

void Channel::deliver(EmuMessage message) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(message));
  }
  ready_.notify_all();
}

std::optional<EmuMessage> Channel::take_locked(int tag, int source) {
  for (std::size_t i = 0; i < queue_.size(); ++i) {
    if (matches(queue_[i], tag, source)) return queue_.take(i);
  }
  return std::nullopt;
}

EmuMessage Channel::receive(int tag, int source) {
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    if (auto m = take_locked(tag, source)) return std::move(*m);
    ready_.wait(lock);
  }
}

std::optional<EmuMessage> Channel::try_receive(int tag, int source) {
  const std::lock_guard<std::mutex> lock(mutex_);
  return take_locked(tag, source);
}

std::size_t Channel::queued() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

}  // namespace dlb::emu
