#include "emu/emulator.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "core/groups.hpp"
#include "core/ownership.hpp"
#include "core/policy.hpp"
#include "emu/channel.hpp"

namespace dlb::emu {

namespace {

constexpr int kTagInterrupt = 1;
constexpr int kTagProfile = 2;
constexpr int kTagWork = 3;

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Real spin work standing in for one iteration's computation.
void spin(double ops, int spin_per_op, double slowdown) {
  const auto units = static_cast<std::int64_t>(ops * spin_per_op * slowdown);
  volatile double sink = 1.0;
  for (std::int64_t i = 0; i < units; ++i) {
    sink = sink * 1.0000001 + 0.0000001;
  }
}

struct Shared {
  const core::LoopDescriptor* loop = nullptr;
  core::DlbConfig config;
  EmuParams params;
  std::vector<std::unique_ptr<Channel>> channels;
  std::vector<std::vector<int>> groups;
  std::vector<int> group_of;

  std::mutex stats_mutex;
  int syncs = 0;
  int redistributions = 0;
  std::int64_t moved = 0;

  std::vector<std::int64_t> executed;

  double slowdown(int worker) const {
    return params.slowdowns.empty() ? 1.0
                                    : params.slowdowns[static_cast<std::size_t>(worker)];
  }
};

enum class Outcome { kContinue, kInactive, kLoopDone };

struct WorkerState {
  int self = 0;
  core::IterationSet mine;
  std::vector<int> active;
  int round = 0;
  Clock::time_point window_start = Clock::now();
  std::int64_t done_in_window = 0;
  double last_rate = 0.0;
};

void broadcast(Shared& shared, const WorkerState& st, int tag, const EmuMessage& base) {
  for (const int peer : st.active) {
    if (peer == st.self) continue;
    EmuMessage m = base;
    m.source = st.self;
    m.tag = tag;
    shared.channels[static_cast<std::size_t>(peer)]->deliver(std::move(m));
  }
}

Outcome participate(Shared& shared, WorkerState& st) {
  // Performance metric: iterations per (wall) second since the last sync.
  const double window = seconds_since(st.window_start);
  double rate;
  if (st.done_in_window > 0 && window > 0.0) {
    rate = static_cast<double>(st.done_in_window) / window;
  } else if (st.last_rate > 0.0) {
    rate = st.last_rate;
  } else {
    rate = 1.0 / std::max(shared.slowdown(st.self), 1e-9);
  }
  st.last_rate = rate;

  core::ProfileSnapshot own{st.self, st.mine.size(), rate, true};
  EmuMessage pm;
  pm.round = st.round;
  pm.snapshot = own;
  broadcast(shared, st, kTagProfile, pm);

  std::vector<core::ProfileSnapshot> profiles{own};
  for (const int peer : st.active) {
    if (peer == st.self) continue;
    const EmuMessage m =
        shared.channels[static_cast<std::size_t>(st.self)]->receive(kTagProfile, peer);
    if (m.round != st.round) throw std::logic_error("emu: profile round mismatch");
    profiles.push_back(m.snapshot);
  }
  std::sort(profiles.begin(), profiles.end(),
            [](const core::ProfileSnapshot& a, const core::ProfileSnapshot& b) {
              return a.proc < b.proc;
            });

  const core::Decision decision = core::decide(profiles, shared.config);

  if (st.self == st.active.front()) {
    const std::lock_guard<std::mutex> lock(shared.stats_mutex);
    ++shared.syncs;
    if (decision.moved) {
      ++shared.redistributions;
      shared.moved += decision.to_move;
    }
  }

  if (decision.total_remaining == 0) return Outcome::kLoopDone;

  if (decision.moved) {
    for (const auto& t : decision.transfers) {
      if (t.from != st.self) continue;
      EmuMessage wm;
      wm.source = st.self;
      wm.tag = kTagWork;
      wm.round = st.round;
      wm.ranges = st.mine.take_back(t.count);
      shared.channels[static_cast<std::size_t>(t.to)]->deliver(std::move(wm));
    }
    for (const auto& t : decision.transfers) {
      if (t.to != st.self) continue;
      const EmuMessage m =
          shared.channels[static_cast<std::size_t>(st.self)]->receive(kTagWork, t.from);
      for (const auto& range : m.ranges) st.mine.add(range);
    }
  }

  std::vector<int> next_active;
  for (const int p : st.active) {
    if (std::find(decision.newly_inactive.begin(), decision.newly_inactive.end(), p) ==
        decision.newly_inactive.end()) {
      next_active.push_back(p);
    }
  }
  st.active = std::move(next_active);
  ++st.round;
  st.window_start = Clock::now();
  st.done_in_window = 0;
  const bool still_active =
      std::find(st.active.begin(), st.active.end(), st.self) != st.active.end();
  return still_active ? Outcome::kContinue : Outcome::kInactive;
}

void dlb_worker(Shared& shared, int self) {
  WorkerState st;
  st.self = self;
  st.mine = core::IterationSet::block_partition(shared.loop->iterations, shared.params.workers,
                                                self);
  st.active = shared.groups[static_cast<std::size_t>(
      shared.group_of[static_cast<std::size_t>(self)])];

  auto& inbox = *shared.channels[static_cast<std::size_t>(self)];
  while (true) {
    if (!st.mine.empty()) {
      bool synced = false;
      Outcome outcome = Outcome::kContinue;
      while (auto m = inbox.try_receive(kTagInterrupt)) {
        if (m->round == st.round) {
          outcome = participate(shared, st);
          synced = true;
          break;
        }
      }
      if (synced) {
        if (outcome != Outcome::kContinue) break;
        continue;
      }
      const std::int64_t index = st.mine.pop_front();
      spin(shared.loop->ops_of(index), shared.params.spin_per_op, shared.slowdown(self));
      ++shared.executed[static_cast<std::size_t>(self)];
      ++st.done_in_window;
    } else {
      EmuMessage im;
      im.round = st.round;
      broadcast(shared, st, kTagInterrupt, im);
      const Outcome outcome = participate(shared, st);
      if (outcome != Outcome::kContinue) break;
    }
  }
}

void static_worker(Shared& shared, int self) {
  auto mine = core::IterationSet::block_partition(shared.loop->iterations,
                                                  shared.params.workers, self);
  while (!mine.empty()) {
    const std::int64_t index = mine.pop_front();
    spin(shared.loop->ops_of(index), shared.params.spin_per_op, shared.slowdown(self));
    ++shared.executed[static_cast<std::size_t>(self)];
  }
}

}  // namespace

EmuResult run_emulated(const EmuParams& params, const core::AppDescriptor& app,
                       const core::DlbConfig& config) {
  app.validate();
  if (app.loops.size() != 1) {
    throw std::invalid_argument("run_emulated: single-loop applications only");
  }
  if (params.workers < 1) throw std::invalid_argument("run_emulated: workers < 1");
  if (!params.slowdowns.empty() &&
      params.slowdowns.size() != static_cast<std::size_t>(params.workers)) {
    throw std::invalid_argument("run_emulated: slowdowns size != workers");
  }
  const bool is_dlb =
      config.strategy == core::Strategy::kGDDLB || config.strategy == core::Strategy::kLDDLB;
  if (!is_dlb && config.strategy != core::Strategy::kNoDlb) {
    throw std::invalid_argument(
        "run_emulated: only kNoDlb, kGDDLB, and kLDDLB run on the live backend");
  }
  config.validate(params.workers);

  Shared shared;
  shared.loop = &app.loops[0];
  shared.config = config;
  shared.params = params;
  shared.executed.assign(static_cast<std::size_t>(params.workers), 0);
  for (int w = 0; w < params.workers; ++w) {
    shared.channels.push_back(std::make_unique<Channel>());
  }
  shared.groups = core::form_groups(params.workers, config);
  shared.group_of.assign(static_cast<std::size_t>(params.workers), 0);
  for (std::size_t g = 0; g < shared.groups.size(); ++g) {
    for (const int w : shared.groups[g]) {
      shared.group_of[static_cast<std::size_t>(w)] = static_cast<int>(g);
    }
  }

  const auto started = Clock::now();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(params.workers));
  for (int w = 0; w < params.workers; ++w) {
    threads.emplace_back([&shared, w, is_dlb] {
      if (is_dlb) {
        dlb_worker(shared, w);
      } else {
        static_worker(shared, w);
      }
    });
  }
  for (auto& t : threads) t.join();

  EmuResult result;
  result.wall_seconds = seconds_since(started);
  result.executed_per_worker = shared.executed;
  result.syncs = shared.syncs;
  result.redistributions = shared.redistributions;
  result.iterations_moved = shared.moved;

  std::int64_t executed_total = 0;
  for (const auto n : shared.executed) executed_total += n;
  if (executed_total != app.loops[0].iterations) {
    throw std::logic_error("run_emulated: iterations executed != scheduled");
  }
  return result;
}

}  // namespace dlb::emu
