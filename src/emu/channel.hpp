#pragma once

#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <optional>
#include <vector>

#include "core/ownership.hpp"
#include "core/policy.hpp"
#include "support/ring_buffer.hpp"

namespace dlb::emu {

/// Message of the live (thread-based) emulation: one struct covers all
/// protocol kinds; unused fields stay empty.
struct EmuMessage {
  int source = -1;
  int tag = 0;
  int round = 0;
  core::ProfileSnapshot snapshot;
  std::vector<core::IterRange> ranges;
};

inline constexpr int kEmuAnyTag = -1;
inline constexpr int kEmuAnySource = -1;

/// Thread-safe tagged mailbox: the live analogue of sim::Mailbox.  FIFO
/// within matches; receive blocks on a condition variable.  Mirrors the
/// simulator mailbox's ring-buffered pending list: no per-message node.
class Channel {
 public:
  void deliver(EmuMessage message);

  /// Blocking receive of the oldest message matching tag/source.
  [[nodiscard]] EmuMessage receive(int tag = kEmuAnyTag, int source = kEmuAnySource);

  /// Non-blocking probe-and-take.
  [[nodiscard]] std::optional<EmuMessage> try_receive(int tag = kEmuAnyTag,
                                                      int source = kEmuAnySource);

  [[nodiscard]] std::size_t queued() const;

 private:
  static bool matches(const EmuMessage& m, int tag, int source) noexcept {
    return (tag == kEmuAnyTag || m.tag == tag) &&
           (source == kEmuAnySource || m.source == source);
  }
  std::optional<EmuMessage> take_locked(int tag, int source);

  mutable std::mutex mutex_;
  std::condition_variable ready_;
  support::RingBuffer<EmuMessage> queue_;
};

}  // namespace dlb::emu
