#pragma once

#include <cstdint>
#include <vector>

#include "core/run_stats.hpp"
#include "core/types.hpp"

namespace dlb::emu {

/// Live emulation of a loaded NOW on the host machine: each "workstation" is
/// an OS thread, messages travel through in-memory channels, computation is
/// real spin work, and the multi-user external load is emulated by scaling
/// each worker's spin amount by a per-worker slowdown factor.  The *same*
/// policy code (core::decide, IterationSet, transfer plans) drives the
/// balancing as in the simulator — this backend demonstrates the run-time
/// library operating outside virtual time.
///
/// Supported strategies: kNoDlb and the two distributed schemes (kGDDLB,
/// kLDDLB).  The centralized schemes need the master's CPU-sharing semantics
/// that only the simulator models faithfully.
struct EmuParams {
  int workers = 4;
  /// Spin work per basic operation (calibrates absolute wall time; relative
  /// comparisons do not depend on it).
  int spin_per_op = 1;
  /// Per-worker slowdown factors (the emulated external load); empty means
  /// all 1.0.  A factor f makes the worker execute f times the spin work per
  /// iteration, exactly like the simulator's (l + 1) effective-speed model
  /// with a persistent load.
  std::vector<double> slowdowns;
};

struct EmuResult {
  double wall_seconds = 0.0;
  std::vector<std::int64_t> executed_per_worker;
  int syncs = 0;
  int redistributions = 0;
  std::int64_t iterations_moved = 0;
};

/// Runs a single-loop application live.  Throws std::invalid_argument for
/// unsupported strategies or multi-loop applications.
[[nodiscard]] EmuResult run_emulated(const EmuParams& params, const core::AppDescriptor& app,
                                     const core::DlbConfig& config);

}  // namespace dlb::emu
