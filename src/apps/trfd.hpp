#pragma once

#include <cstdint>

#include "core/types.hpp"

namespace dlb::apps {

/// TRFD from the Perfect Benchmarks (paper §6.3): two main computation loops
/// with a sequentialized transpose in between.  The single major array is
/// [n(n+1)/2] x [n(n+1)/2], column-block distributed; iterations operate on
/// columns, so DC is the column height N = n(n+1)/2.
struct TrfdParams {
  int n = 30;
};

/// Array dimension N = n(n+1)/2 (465, 820, 1275 for n = 30, 40, 50).
[[nodiscard]] std::int64_t trfd_array_dim(int n);

/// Work of unfolded loop-2 iteration j (1-indexed), from the paper:
///   n^3 + 3n^2 + n(1 + i/2 - i^2/2) + (i - i^2),
///   i = (1 + sqrt(-7 + 8 j)) / 2.
[[nodiscard]] double trfd_loop2_unfolded_work(int n, std::int64_t j);

/// Builds the TRFD application descriptor:
///  - loop 1: N iterations, uniform work n^3 + 3n^2 + n,
///  - sequential transpose phase: gather to master, N^2 element moves,
///    scatter back,
///  - loop 2: triangular work folded into a uniform loop of ceil(N/2)
///    iterations by bitonic scheduling (iteration j paired with N-1-j),
///  - DC = N elements of 8 bytes for both loops (column movement).
[[nodiscard]] core::AppDescriptor make_trfd(const TrfdParams& params);

}  // namespace dlb::apps
