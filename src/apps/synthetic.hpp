#pragma once

#include <cstdint>

#include "core/types.hpp"

namespace dlb::apps {

/// Synthetic single-loop applications for tests and ablations.

/// Uniform loop: every iteration costs `ops_per_iteration`.
[[nodiscard]] core::AppDescriptor make_uniform(std::int64_t iterations, double ops_per_iteration,
                                               double bytes_per_iteration);

/// Triangular (decreasing) loop: iteration j costs
/// ops_max - (ops_max - ops_min) * j / (iterations - 1).
[[nodiscard]] core::AppDescriptor make_triangular(std::int64_t iterations, double ops_max,
                                                  double ops_min, double bytes_per_iteration);

/// Sawtooth non-uniform loop: alternates ops_a, ops_b.
[[nodiscard]] core::AppDescriptor make_sawtooth(std::int64_t iterations, double ops_a,
                                                double ops_b, double bytes_per_iteration);

/// Stencil-like loop with intrinsic communication: every iteration computes
/// `ops_per_iteration` and exchanges `intrinsic_bytes` with its neighbour
/// (the IC term of §4.1 that MXM/TRFD leave at zero).
[[nodiscard]] core::AppDescriptor make_stencil(std::int64_t iterations, double ops_per_iteration,
                                               double bytes_per_iteration,
                                               double intrinsic_bytes);

}  // namespace dlb::apps
