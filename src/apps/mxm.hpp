#pragma once

#include <cstdint>

#include "core/types.hpp"

namespace dlb::apps {

/// Matrix multiplication Z = X * Y (paper §6.2): Z is R x C, X is R x R2,
/// Y is R2 x C.  The outermost loop over the R rows is parallelized; rows of
/// Z and X are distributed, Y is replicated.
struct MxmParams {
  std::int64_t R = 400;
  std::int64_t C = 400;
  std::int64_t R2 = 400;
};

/// Builds the MXM application descriptor:
///  - one uniform loop of R iterations,
///  - work per iteration W = C * R2 basic operations (the paper's count),
///  - data communication DC = C elements per migrated iteration (only the
///    rows of X move on redistribution, §6.2), 8-byte elements,
///  - no intrinsic communication.
[[nodiscard]] core::AppDescriptor make_mxm(const MxmParams& params);

}  // namespace dlb::apps
