#include "apps/trfd.hpp"

#include <cmath>
#include <stdexcept>

namespace dlb::apps {

std::int64_t trfd_array_dim(int n) {
  if (n < 1) throw std::invalid_argument("trfd: n must be positive");
  return static_cast<std::int64_t>(n) * (n + 1) / 2;
}

double trfd_loop2_unfolded_work(int n, std::int64_t j) {
  if (j < 1 || j > trfd_array_dim(n)) throw std::out_of_range("trfd: loop-2 index out of range");
  const double dn = static_cast<double>(n);
  const double i = (1.0 + std::sqrt(-7.0 + 8.0 * static_cast<double>(j))) / 2.0;
  return dn * dn * dn + 3.0 * dn * dn + dn * (1.0 + i / 2.0 - i * i / 2.0) + (i - i * i);
}

core::AppDescriptor make_trfd(const TrfdParams& params) {
  const int n = params.n;
  const std::int64_t N = trfd_array_dim(n);
  const double dn = static_cast<double>(n);
  const double column_bytes = static_cast<double>(N) * 8.0;

  core::LoopDescriptor loop1;
  loop1.name = "trfd-l1";
  loop1.iterations = N;
  const double w1 = dn * dn * dn + 3.0 * dn * dn + dn;
  loop1.work_ops = [w1](std::int64_t) { return w1; };
  loop1.bytes_per_iteration = column_bytes;
  loop1.uniform = true;

  // Loop 2 is triangular; the compiler folds it into a uniform loop by
  // bitonic scheduling [Cierniak/Li/Zaki 95]: folded iteration k combines
  // unfolded iterations k+1 and N-k (1-indexed), the middle one (odd N)
  // standing alone.
  core::LoopDescriptor loop2;
  loop2.name = "trfd-l2";
  loop2.iterations = (N + 1) / 2;
  loop2.work_ops = [n, N](std::int64_t k) {
    const std::int64_t first = k + 1;
    const std::int64_t second = N - k;
    double work = trfd_loop2_unfolded_work(n, first);
    if (second != first) work += trfd_loop2_unfolded_work(n, second);
    return work;
  };
  // Each folded iteration owns two columns of the array.
  loop2.bytes_per_iteration = 2.0 * column_bytes;
  loop2.uniform = true;  // bitonic folding equalizes pair sums

  core::SequentialPhase transpose;
  transpose.gather_bytes_per_iteration = column_bytes;
  transpose.master_ops = static_cast<double>(N) * static_cast<double>(N);
  transpose.scatter_bytes_total = static_cast<double>(N) * column_bytes;  // the N^2 array
  core::AppDescriptor app;
  app.name = "TRFD";
  app.loops.push_back(std::move(loop1));
  app.loops.push_back(std::move(loop2));
  app.phases.push_back(transpose);
  return app;
}

}  // namespace dlb::apps
