#include "apps/synthetic.hpp"

#include <stdexcept>

namespace dlb::apps {

namespace {

core::AppDescriptor wrap(const char* name, core::LoopDescriptor loop) {
  core::AppDescriptor app;
  app.name = name;
  app.loops.push_back(std::move(loop));
  return app;
}

}  // namespace

core::AppDescriptor make_uniform(std::int64_t iterations, double ops_per_iteration,
                                 double bytes_per_iteration) {
  if (ops_per_iteration < 0.0) throw std::invalid_argument("make_uniform: negative work");
  core::LoopDescriptor loop;
  loop.name = "uniform";
  loop.iterations = iterations;
  loop.work_ops = [ops_per_iteration](std::int64_t) { return ops_per_iteration; };
  loop.bytes_per_iteration = bytes_per_iteration;
  loop.uniform = true;
  return wrap("synthetic-uniform", std::move(loop));
}

core::AppDescriptor make_triangular(std::int64_t iterations, double ops_max, double ops_min,
                                    double bytes_per_iteration) {
  if (ops_max < ops_min) throw std::invalid_argument("make_triangular: ops_max < ops_min");
  core::LoopDescriptor loop;
  loop.name = "triangular";
  loop.iterations = iterations;
  loop.work_ops = [=](std::int64_t j) {
    if (iterations <= 1) return ops_max;
    const double t = static_cast<double>(j) / static_cast<double>(iterations - 1);
    return ops_max - (ops_max - ops_min) * t;
  };
  loop.bytes_per_iteration = bytes_per_iteration;
  loop.uniform = false;
  return wrap("synthetic-triangular", std::move(loop));
}

core::AppDescriptor make_stencil(std::int64_t iterations, double ops_per_iteration,
                                 double bytes_per_iteration, double intrinsic_bytes) {
  auto app = make_uniform(iterations, ops_per_iteration, bytes_per_iteration);
  app.name = "synthetic-stencil";
  app.loops[0].name = "stencil";
  app.loops[0].intrinsic_bytes_per_iteration = intrinsic_bytes;
  return app;
}

core::AppDescriptor make_sawtooth(std::int64_t iterations, double ops_a, double ops_b,
                                  double bytes_per_iteration) {
  core::LoopDescriptor loop;
  loop.name = "sawtooth";
  loop.iterations = iterations;
  loop.work_ops = [=](std::int64_t j) { return (j % 2 == 0) ? ops_a : ops_b; };
  loop.bytes_per_iteration = bytes_per_iteration;
  loop.uniform = false;
  return wrap("synthetic-sawtooth", std::move(loop));
}

}  // namespace dlb::apps
