#include "apps/mxm.hpp"

#include <stdexcept>

namespace dlb::apps {

core::AppDescriptor make_mxm(const MxmParams& params) {
  if (params.R < 1 || params.C < 1 || params.R2 < 1) {
    throw std::invalid_argument("make_mxm: dimensions must be positive");
  }
  const double work = static_cast<double>(params.C) * static_cast<double>(params.R2);

  core::LoopDescriptor loop;
  loop.name = "mxm";
  loop.iterations = params.R;
  loop.work_ops = [work](std::int64_t) { return work; };
  loop.bytes_per_iteration = static_cast<double>(params.C) * 8.0;  // DC = C doubles
  loop.uniform = true;

  core::AppDescriptor app;
  app.name = "MXM";
  app.loops.push_back(std::move(loop));
  return app;
}

}  // namespace dlb::apps
