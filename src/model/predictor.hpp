#pragma once

#include <cstdint>
#include <vector>

#include "cluster/cluster.hpp"
#include "core/types.hpp"
#include "net/characterize.hpp"

namespace dlb::model {

/// Predicted behaviour of one strategy on one loop (§4.2's total-cost
/// derivation, solved numerically).
struct StrategyPrediction {
  core::Strategy strategy = core::Strategy::kNoDlb;
  double makespan_seconds = 0.0;
  int syncs = 0;
  int redistributions = 0;
  std::int64_t iterations_moved = 0;
  double overhead_seconds = 0.0;  // sum of sigma + eta + delta + iota (+ delay)
};

/// Inputs of the modeling process (§4.1): processor, program, network, and
/// external-load parameters.  The load realization is reconstructed from the
/// cluster seed, so the model sees the *same* discrete random load the
/// run-time system experiences — exactly the paper's §4.3 setup where the
/// load function observed at run time is plugged into the model.
struct PredictorInputs {
  cluster::ClusterParams cluster;
  const core::LoopDescriptor* loop = nullptr;
  net::CollectiveCosts costs;  // fitted sigma(P) from characterization
  core::DlbConfig config;      // thresholds, margins, eta
};

/// Numerically solves the paper's recurrence system (Eqs. 1-5 and the group
/// extension with the LCDLB delay factor):
///
///   - between sync points every processor executes iterations at its
///     load-modulated effective speed (Eq. 1 for uniform loops, Eq. 2
///     non-uniform — handled exactly by walking the per-iteration work),
///   - the first finisher triggers a synchronization; profiles are the
///     iterations/second since the last sync (§3.2),
///   - the *same* decision pipeline as the run-time library (threshold,
///     10% profitability, Eq. 3 distribution, greedy transfer plan) decides
///     the redistribution,
///   - each sync adds sigma(K) + eta; a redistribution adds
///     delta(j) = nu(j) L + phi(j) DC / B (Eq. 5); centralized schemes add
///     the instruction cost iota(j) = nu(j) L and, for LCDLB, the delay
///     factor from queueing at the single central balancer.
///
/// The termination condition Gamma(tau) = 0 (Eq. 4) yields the predicted
/// makespan.
class Predictor {
 public:
  explicit Predictor(PredictorInputs inputs);

  /// Predicts one strategy (kNoDlb and the four DLB strategies).
  [[nodiscard]] StrategyPrediction predict(core::Strategy strategy) const;

  /// Predicts the four ranked strategies (GC, GD, LC, LD).
  [[nodiscard]] std::vector<StrategyPrediction> predict_ranked() const;

  /// Ranked-strategy ids (see core::ranked_strategy) ordered best-first by
  /// predicted makespan — the "Predicted" columns of Tables 1-2.
  [[nodiscard]] std::vector<int> predicted_order() const;

 private:
  PredictorInputs inputs_;
};

}  // namespace dlb::model
