#include "model/predictor.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "core/groups.hpp"
#include "core/ownership.hpp"
#include "core/policy.hpp"
#include "load/load_function.hpp"
#include "sim/time.hpp"
#include "support/ranking.hpp"
#include "support/rng.hpp"

namespace dlb::model {

namespace {

/// Builds the same per-processor load realizations the cluster will see
/// (identical seed forking as cluster::Cluster).
std::vector<load::LoadFunction> build_loads(const cluster::ClusterParams& params) {
  const support::Rng root(params.seed);
  std::vector<load::LoadFunction> loads;
  loads.reserve(static_cast<std::size_t>(params.procs));
  for (int i = 0; i < params.procs; ++i) {
    if (params.external_load) {
      loads.emplace_back(params.load, root.fork(static_cast<std::uint64_t>(i)));
    } else {
      loads.push_back(load::constant_load(0, params.load.persistence));
    }
  }
  return loads;
}

double speed_of(const cluster::ClusterParams& params, int i) {
  return params.speeds.empty() ? 1.0 : params.speeds[static_cast<std::size_t>(i)];
}

/// Virtual time at which `ops` operations complete when started at `t0` on a
/// processor of bare speed `speed` under load function `lf`.
sim::SimTime advance_ops(load::LoadFunction& lf, double speed, double base_rate,
                         sim::SimTime t0, double ops) {
  sim::SimTime t = t0;
  double remaining = ops;
  while (remaining > 0.0) {
    const auto segment = lf.segment_at(t);
    const double rate = base_rate * speed / (1.0 + segment.level);
    const sim::SimTime finish = t + sim::from_seconds(remaining / rate);
    if (finish <= segment.end) return finish;
    remaining -= rate * sim::to_seconds(segment.end - t);
    t = segment.end;
  }
  return t;
}

/// Operations a processor can execute in [t0, t1].
double ops_available(load::LoadFunction& lf, double speed, double base_rate, sim::SimTime t0,
                     sim::SimTime t1) {
  double ops = 0.0;
  sim::SimTime t = t0;
  while (t < t1) {
    const auto segment = lf.segment_at(t);
    const sim::SimTime end = std::min(segment.end, t1);
    ops += base_rate * speed / (1.0 + segment.level) * sim::to_seconds(end - t);
    t = end;
  }
  return ops;
}

/// Recurrence state of one processor within its group.  `resume_at` is the
/// time it goes back to computing after the previous synchronization —
/// receivers of migrated work resume later than the rest of the group, as
/// their shipment must finish transmitting first.
struct Member {
  int proc = 0;
  core::IterationSet owned;
  bool active = true;
  double last_rate = 0.0;
  sim::SimTime resume_at = 0;
};

/// Recurrence state of one group (global strategies: a single group of P).
struct Group {
  std::vector<Member> members;
  bool done = false;
  sim::SimTime finish = 0;
  int syncs = 0;
  int redistributions = 0;
  std::int64_t moved = 0;
  double overhead_seconds = 0.0;
};

int active_count(const Group& g) {
  int n = 0;
  for (const auto& m : g.members) {
    if (m.active) ++n;
  }
  return n;
}

}  // namespace

Predictor::Predictor(PredictorInputs inputs) : inputs_(std::move(inputs)) {
  if (inputs_.loop == nullptr) throw std::invalid_argument("Predictor: null loop");
  inputs_.loop->validate();
  inputs_.config.validate(inputs_.cluster.procs);
}

StrategyPrediction Predictor::predict(core::Strategy strategy) const {
  // The paper folds intrinsic communication into the per-iteration time
  // T(W, IC) (§4.1); we add the op-equivalent of one IC message exchange to
  // every iteration's work.
  core::LoopDescriptor effective_loop = *inputs_.loop;
  if (effective_loop.intrinsic_bytes_per_iteration > 0.0 &&
      inputs_.cluster.procs > 1) {
    const double ic_seconds =
        inputs_.costs.latency_seconds +
        effective_loop.intrinsic_bytes_per_iteration / inputs_.costs.bandwidth_bytes;
    const double ic_ops = ic_seconds * inputs_.cluster.base_ops_per_sec;
    const auto base_work = effective_loop.work_ops;
    effective_loop.work_ops = [base_work, ic_ops](std::int64_t j) {
      return base_work(j) + ic_ops;
    };
  }
  const auto& loop = effective_loop;
  const auto& cp = inputs_.cluster;
  const int procs = cp.procs;
  const double base_rate = cp.base_ops_per_sec;
  auto loads = build_loads(cp);

  StrategyPrediction out;
  out.strategy = strategy;

  if (strategy == core::Strategy::kAuto) {
    throw std::invalid_argument("Predictor: kAuto is what the prediction chooses, not an input");
  }
  if (strategy == core::Strategy::kNoDlb) {
    sim::SimTime makespan = 0;
    for (int i = 0; i < procs; ++i) {
      auto set = core::IterationSet::block_partition(loop.iterations, procs, i);
      const sim::SimTime fin = advance_ops(loads[static_cast<std::size_t>(i)], speed_of(cp, i),
                                           base_rate, 0, set.ops(loop));
      makespan = std::max(makespan, fin);
    }
    out.makespan_seconds = sim::to_seconds(makespan);
    return out;
  }

  core::DlbConfig config = inputs_.config;
  config.strategy = strategy;
  const bool centralized =
      strategy == core::Strategy::kGCDLB || strategy == core::Strategy::kLCDLB;
  const auto group_ids = form_groups(procs, config);

  // eta: distribution-calculation cost in dedicated-CPU seconds (plus the
  // master-side overhead for the centralized schemes).  The calculation runs
  // on a loaded workstation, so each use below is scaled by the computing
  // processor's slowdown at the synchronization time.
  const double eta_base =
      (config.decision_ops + (centralized ? config.balancer_overhead_ops : 0.0)) / base_rate;
  const double latency = inputs_.costs.latency_seconds;
  const double bandwidth = inputs_.costs.bandwidth_bytes;

  std::vector<Group> groups;
  for (const auto& ids : group_ids) {
    Group g;
    for (const int p : ids) {
      Member m;
      m.proc = p;
      m.owned = core::IterationSet::block_partition(loop.iterations, procs, p);
      g.members.push_back(std::move(m));
    }
    groups.push_back(std::move(g));
  }

  // The single central balancer's busy horizon (LCDLB delay factor g(j)).
  sim::SimTime balancer_busy_until = 0;

  auto next_sync_time = [&](Group& g) {
    sim::SimTime t_sync = sim::kTimeInfinity;
    for (auto& m : g.members) {
      if (!m.active) continue;
      auto& lf = loads[static_cast<std::size_t>(m.proc)];
      const sim::SimTime fin =
          advance_ops(lf, speed_of(cp, m.proc), base_rate, m.resume_at, m.owned.ops(loop));
      t_sync = std::min(t_sync, fin);
    }
    return t_sync;
  };

  while (true) {
    // Pick the unfinished group with the earliest next synchronization; for
    // LCDLB this establishes the arrival order at the central balancer.
    Group* group = nullptr;
    sim::SimTime t_sync = sim::kTimeInfinity;
    for (auto& g : groups) {
      if (g.done) continue;
      const sim::SimTime t = next_sync_time(g);
      if (t < t_sync) {
        t_sync = t;
        group = &g;
      }
    }
    if (group == nullptr) break;
    Group& g = *group;

    // Execute each member's window [resume_at, t_sync): as many whole
    // iterations as its load-modulated capacity allows (Eqs. 1-2), plus the
    // in-flight iteration (the interrupt is polled between iterations, so
    // the current one completes before the profile goes out — exactly the
    // Fig. 3 slave).  Members whose exact finish time is t_sync (the
    // finishers) are drained outright — capacity re-integration must not
    // strand their last iteration on float rounding.
    std::vector<core::ProfileSnapshot> profiles;
    for (auto& m : g.members) {
      if (!m.active) continue;
      auto& lf = loads[static_cast<std::size_t>(m.proc)];
      const double window = std::max(sim::to_seconds(t_sync - m.resume_at), 0.0);
      std::int64_t done = 0;
      if (m.resume_at < t_sync) {
        const sim::SimTime own_finish =
            advance_ops(lf, speed_of(cp, m.proc), base_rate, m.resume_at, m.owned.ops(loop));
        if (own_finish <= t_sync) {
          done = m.owned.size();
          m.owned = core::IterationSet();
        } else {
          double capacity =
              ops_available(lf, speed_of(cp, m.proc), base_rate, m.resume_at, t_sync) *
              (1.0 + 1e-9);
          while (!m.owned.empty() && loop.ops_of(m.owned.front()) <= capacity) {
            capacity -= loop.ops_of(m.owned.front());
            (void)m.owned.pop_front();
            ++done;
          }
          if (!m.owned.empty()) {
            (void)m.owned.pop_front();
            ++done;
          }
        }
      }
      double rate;
      if (done > 0 && window > 0.0) {
        rate = static_cast<double>(done) / window;
      } else if (m.last_rate > 0.0) {
        rate = m.last_rate;
      } else {
        rate = speed_of(cp, m.proc) * base_rate / std::max(loop.mean_ops(), 1.0);
      }
      m.last_rate = rate;
      profiles.push_back({m.proc, m.owned.size(), rate, true});
    }
    ++g.syncs;

    const int k = active_count(g);
    // Centralized sync: interrupt (one-to-all) + profiles (all-to-one) +
    // the outcome broadcast (one-to-all).  The paper's sigma omits the last
    // term and charges only iota = nu L for instructions, but the run-time
    // library must inform every waiting slave of the verdict (even a
    // no-move), so the broadcast is real cost.
    const double sigma = centralized
                             ? inputs_.costs.sync_centralized(k) +
                                   inputs_.costs.eval(net::Pattern::kOneToAll, k)
                             : inputs_.costs.sync_distributed(k);
    const auto decision = core::decide(profiles, config);

    // The distribution calculation runs under external load: on the master
    // for the centralized schemes (which also pay the collocated-slave
    // context-switch overhead folded into eta_base), replicated on every
    // member for the distributed ones (scaled by the group's mean slowdown).
    double eta = eta_base;
    if (centralized) {
      eta *= loads[0].slowdown_at(t_sync);
    } else {
      double slowdown_sum = 0.0;
      int counted = 0;
      for (const auto& m : g.members) {
        if (!m.active) continue;
        slowdown_sum += loads[static_cast<std::size_t>(m.proc)].slowdown_at(t_sync);
        ++counted;
      }
      eta *= counted > 0 ? slowdown_sum / counted : 1.0;
    }

    // LCDLB delay factor: wait for the central balancer to finish serving
    // earlier groups.
    double delay = 0.0;
    if (centralized && groups.size() > 1) {
      if (balancer_busy_until > t_sync) delay = sim::to_seconds(balancer_busy_until - t_sync);
    }

    double iota = 0.0;          // instruction cost (centralized only)
    double delta_serial = 0.0;  // Eq. 5's serialized movement cost (reporting)
    if (decision.moved) {
      const double nu = static_cast<double>(decision.transfers.size());
      delta_serial = nu * latency + static_cast<double>(decision.to_move) *
                                        loop.bytes_per_iteration / bandwidth;
      if (centralized) iota = nu * latency;
      ++g.redistributions;
      g.moved += decision.to_move;
    }
    if (centralized) {
      balancer_busy_until = t_sync + sim::from_seconds(delay + eta + iota);
    }

    if (decision.total_remaining == 0) {
      g.done = true;
      // The terminal sync still costs a synchronization round.
      g.finish = t_sync + sim::from_seconds(delay + sigma + eta);
      g.overhead_seconds += delay + sigma + eta;
      continue;
    }

    const double base_overhead = delay + sigma + eta + iota;
    g.overhead_seconds += base_overhead + delta_serial;
    const sim::SimTime base_resume = t_sync + sim::from_seconds(base_overhead);
    for (auto& m : g.members) {
      if (m.active) m.resume_at = base_resume;
    }

    // Apply the transfer plan.  The shared medium serializes the shipments;
    // only each *receiver* waits for its own transfer to finish — senders
    // and bystanders resume right after the synchronization (this is what
    // the protocol actually does, and charging the full delta to everyone
    // systematically over-penalizes the big global moves).
    if (decision.moved) {
      double cumulative_seconds = 0.0;
      for (const auto& t : decision.transfers) {
        auto from = std::find_if(g.members.begin(), g.members.end(),
                                 [&](const Member& m) { return m.proc == t.from; });
        auto to = std::find_if(g.members.begin(), g.members.end(),
                               [&](const Member& m) { return m.proc == t.to; });
        for (const auto& range : from->owned.take_back(t.count)) to->owned.add(range);
        cumulative_seconds +=
            latency + static_cast<double>(t.count) * loop.bytes_per_iteration / bandwidth;
        to->resume_at = base_resume + sim::from_seconds(cumulative_seconds);
      }
    }
    for (const int p : decision.newly_inactive) {
      for (auto& m : g.members) {
        if (m.proc == p) m.active = false;
      }
    }
    if (active_count(g) == 0) {
      g.done = true;
      g.finish = base_resume;
    }
  }

  sim::SimTime makespan = 0;
  for (const auto& g : groups) {
    makespan = std::max(makespan, g.finish);
    out.syncs += g.syncs;
    out.redistributions += g.redistributions;
    out.iterations_moved += g.moved;
    out.overhead_seconds += g.overhead_seconds;
  }
  out.makespan_seconds = sim::to_seconds(makespan);
  return out;
}

std::vector<StrategyPrediction> Predictor::predict_ranked() const {
  std::vector<StrategyPrediction> out;
  for (int id = 0; id < core::kRankedStrategyCount; ++id) {
    out.push_back(predict(core::ranked_strategy(id)));
  }
  return out;
}

std::vector<int> Predictor::predicted_order() const {
  const auto predictions = predict_ranked();
  std::vector<double> costs;
  costs.reserve(predictions.size());
  for (const auto& p : predictions) costs.push_back(p.makespan_seconds);
  return support::rank_by_cost(costs);
}

}  // namespace dlb::model
