#pragma once

#include <cstdint>
#include <span>

#include "core/types.hpp"

namespace dlb::decision {

/// Hysteresis rule for online re-customization.  A challenger strategy
/// replaces the incumbent only when its predicted relative win
///
///   win = (cost(incumbent) - cost(challenger)) / cost(incumbent)
///
/// exceeds `margin` at `k` consecutive decision points.  Equal predicted
/// costs give win = 0, which never exceeds a non-negative margin — so two
/// strategies with identical cost can never make the selector flap.
struct HysteresisConfig {
  double margin = 0.05;  // relative predicted win required to switch
  int k = 3;             // consecutive decisions the win must persist

  void validate() const;
};

/// Online re-customizing selector: where `decision::Selector` commits one
/// strategy per run (§4.3), the online selector re-ranks the four ranked
/// strategies at every decision point (service mode: every job admission)
/// and switches with hysteresis.  Pure and deterministic: the decision is a
/// function of the incumbent, the streak counter and the cost vector —
/// no clocks, no ambient randomness — so replaying the same cost stream
/// reproduces the same switch sequence on any thread.
class OnlineSelector {
 public:
  explicit OnlineSelector(HysteresisConfig config);

  /// One decision point.  `ranked_costs[i]` is the predicted cost (makespan
  /// seconds) of `core::ranked_strategy(i)`; all costs must be positive and
  /// finite.  The first call commits the cheapest strategy outright (the
  /// paper's commit at first observation); later calls apply the hysteresis
  /// rule.  Ties break toward the lowest ranked id.
  core::Strategy decide(std::span<const double> ranked_costs);

  [[nodiscard]] core::Strategy current() const noexcept { return current_; }
  [[nodiscard]] std::uint64_t decisions() const noexcept { return decisions_; }
  [[nodiscard]] std::uint64_t switches() const noexcept { return switches_; }

 private:
  HysteresisConfig config_;
  core::Strategy current_ = core::Strategy::kNoDlb;  // unset until first decide()
  bool committed_ = false;
  int challenger_id_ = -1;  // ranked id of the current streak's challenger
  int streak_ = 0;
  std::uint64_t decisions_ = 0;
  std::uint64_t switches_ = 0;
};

}  // namespace dlb::decision
