#include "decision/selector.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/runtime.hpp"
#include "support/ranking.hpp"

namespace dlb::decision {

Selector::Selector(cluster::ClusterParams cluster, net::CollectiveCosts costs,
                   core::DlbConfig config)
    : cluster_(std::move(cluster)), costs_(std::move(costs)), config_(config) {
  config_.validate(cluster_.procs);
}

Selection Selector::select(const core::LoopDescriptor& loop) const {
  model::PredictorInputs inputs;
  inputs.cluster = cluster_;
  inputs.loop = &loop;
  inputs.costs = costs_;
  inputs.config = config_;
  const model::Predictor predictor(inputs);

  Selection selection;
  selection.predictions = predictor.predict_ranked();
  selection.predicted_order = predictor.predicted_order();
  selection.chosen = core::ranked_strategy(selection.predicted_order.front());
  return selection;
}

Selection Selector::select(const core::AppDescriptor& app) const {
  app.validate();
  Selection selection;
  selection.predictions.resize(static_cast<std::size_t>(core::kRankedStrategyCount));
  for (int id = 0; id < core::kRankedStrategyCount; ++id) {
    auto& total = selection.predictions[static_cast<std::size_t>(id)];
    total.strategy = core::ranked_strategy(id);
  }
  for (const auto& loop : app.loops) {
    const auto per_loop = select(loop);
    for (int id = 0; id < core::kRankedStrategyCount; ++id) {
      const auto& p = per_loop.predictions[static_cast<std::size_t>(id)];
      auto& total = selection.predictions[static_cast<std::size_t>(id)];
      total.makespan_seconds += p.makespan_seconds;
      total.syncs += p.syncs;
      total.redistributions += p.redistributions;
      total.iterations_moved += p.iterations_moved;
      total.overhead_seconds += p.overhead_seconds;
    }
  }
  std::vector<double> costs;
  for (const auto& p : selection.predictions) costs.push_back(p.makespan_seconds);
  selection.predicted_order = support::rank_by_cost(costs);
  selection.chosen = core::ranked_strategy(selection.predicted_order.front());
  return selection;
}

AutoRun run_auto(const cluster::ClusterParams& params, const core::AppDescriptor& app,
                 const core::DlbConfig& config, const net::CollectiveCosts& costs) {
  const Selector selector(params, costs, config);
  AutoRun out;
  out.selection = selector.select(app);
  core::DlbConfig chosen = config;
  chosen.strategy = out.selection.chosen;
  out.result = core::run_app(params, app, chosen);
  return out;
}

}  // namespace dlb::decision
