#include "decision/online.hpp"

#include <cmath>
#include <stdexcept>

namespace dlb::decision {

void HysteresisConfig::validate() const {
  if (!(margin >= 0.0) || !std::isfinite(margin)) {
    throw std::invalid_argument("HysteresisConfig: margin must be finite and >= 0");
  }
  if (k < 1) throw std::invalid_argument("HysteresisConfig: k must be >= 1");
}

OnlineSelector::OnlineSelector(HysteresisConfig config) : config_(config) {
  config_.validate();
}

core::Strategy OnlineSelector::decide(std::span<const double> ranked_costs) {
  if (ranked_costs.size() != static_cast<std::size_t>(core::kRankedStrategyCount)) {
    throw std::invalid_argument("OnlineSelector: expected one cost per ranked strategy");
  }
  for (const double c : ranked_costs) {
    if (!(c > 0.0) || !std::isfinite(c)) {
      throw std::invalid_argument("OnlineSelector: costs must be positive and finite");
    }
  }
  ++decisions_;

  int best = 0;
  for (int i = 1; i < core::kRankedStrategyCount; ++i) {
    if (ranked_costs[static_cast<std::size_t>(i)] < ranked_costs[static_cast<std::size_t>(best)]) {
      best = i;
    }
  }

  if (!committed_) {
    committed_ = true;
    current_ = core::ranked_strategy(best);
    return current_;
  }

  const int incumbent = core::ranked_id(current_);
  if (best == incumbent) {
    // The incumbent is (weakly) the best choice; any pending streak dies.
    challenger_id_ = -1;
    streak_ = 0;
    return current_;
  }

  const double cost_incumbent = ranked_costs[static_cast<std::size_t>(incumbent)];
  const double cost_challenger = ranked_costs[static_cast<std::size_t>(best)];
  const double win = (cost_incumbent - cost_challenger) / cost_incumbent;
  if (win <= config_.margin) {
    // Not a convincing enough win: the challenger must *exceed* the margin,
    // so equal costs (win == 0) can never start a streak and the selector
    // never flaps between equally priced strategies.
    challenger_id_ = -1;
    streak_ = 0;
    return current_;
  }

  if (best == challenger_id_) {
    ++streak_;
  } else {
    challenger_id_ = best;
    streak_ = 1;
  }
  if (streak_ >= config_.k) {
    current_ = core::ranked_strategy(best);
    challenger_id_ = -1;
    streak_ = 0;
    ++switches_;
  }
  return current_;
}

}  // namespace dlb::decision
