#pragma once

#include <vector>

#include "cluster/cluster.hpp"
#include "core/run_stats.hpp"
#include "core/types.hpp"
#include "model/predictor.hpp"
#include "net/characterize.hpp"

namespace dlb::decision {

/// Outcome of the hybrid compile-/run-time decision process (§4.3).
struct Selection {
  core::Strategy chosen = core::Strategy::kGDDLB;
  std::vector<model::StrategyPrediction> predictions;  // the four ranked strategies
  std::vector<int> predicted_order;                    // ranked ids, best first
};

/// The paper's customization step: the compiler collects the program
/// parameters (the AppDescriptor), the network is characterized off-line
/// (CollectiveCosts), and at run time — once the load function is observable
/// — the model is evaluated for every strategy and the best one is committed.
///
/// In this reproduction the external load is a deterministic seeded process,
/// so "observe the load up to the first synchronization point" and "query the
/// load realization" coincide; the selector feeds the realization straight
/// into the Predictor, which replays the first window exactly the way the
/// run-time system will experience it.
///
/// The selector is deliberately fault-blind: the analytic model (§5) prices
/// synchronization and movement, not crashes, so an armed FaultPlan in the
/// config does not perturb the predictions or the ranking.  Faults only
/// change the execution — run_auto passes the plan through to run_app, which
/// switches to the fault-tolerant protocol of the chosen strategy.
class Selector {
 public:
  Selector(cluster::ClusterParams cluster, net::CollectiveCosts costs, core::DlbConfig config);

  /// Chooses the best strategy for one loop.
  [[nodiscard]] Selection select(const core::LoopDescriptor& loop) const;

  /// Chooses for a whole application: each loop is modeled under each
  /// strategy and the per-loop makespans are summed (loops are balanced
  /// independently, §6.3, but one strategy is linked into the binary).
  [[nodiscard]] Selection select(const core::AppDescriptor& app) const;

 private:
  cluster::ClusterParams cluster_;
  net::CollectiveCosts costs_;
  core::DlbConfig config_;
};

/// End-to-end convenience implementing Strategy::kAuto: select, then run the
/// application under the chosen strategy.  Returns the run result (whose
/// strategy_name records what was chosen) and the selection rationale.
/// An armed config.faults flows through unchanged: selection is made on the
/// failure-free model, execution runs fault-tolerant (every ranked strategy
/// has an FT variant, so the chosen one always supports the plan).
struct AutoRun {
  Selection selection;
  core::RunResult result;
};
[[nodiscard]] AutoRun run_auto(const cluster::ClusterParams& params,
                               const core::AppDescriptor& app, const core::DlbConfig& config,
                               const net::CollectiveCosts& costs);

}  // namespace dlb::decision
