# Applies a LABELS list to every test a gtest_discover_tests() run registered.
#
# CMake's bundled GoogleTestAddTests re-splits its PROPERTIES arguments on
# expansion, so a multi-label list ("tier1;property") cannot be forwarded
# through gtest_discover_tests directly — the semicolon is eaten no matter how
# it is escaped.  Instead tests/CMakeLists.txt appends a tiny per-target stub
# to the directory's TEST_INCLUDE_FILES *after* the discovery include; the
# stub sets `_dlb_tests_file` (the generated <target>[1]_tests.cmake) and
# `_dlb_labels`, then includes this script, which re-reads the discovery file
# to recover the test names and attaches the labels.  Because this runs at
# ctest time, it also labels tests whose discovery file predates a label
# change — no relink required.
if(EXISTS "${_dlb_tests_file}")
  file(STRINGS "${_dlb_tests_file}" _dlb_lines REGEX "^add_test\\(")
  foreach(_dlb_line IN LISTS _dlb_lines)
    # Discovered test names are bracket-quoted — add_test([=[Suite.Case]=] ... —
    # and value-parameterized names embed arbitrary "# GetParam() = (...)" text,
    # so recover the name by locating the matching close guard rather than with
    # a character class.  The discovery script picks the guard's '=' count so
    # the close guard never occurs inside a test name.
    if(_dlb_line MATCHES "^add_test\\((\\[=+\\[)")
      set(_dlb_open "${CMAKE_MATCH_1}")
      string(REPLACE "[" "]" _dlb_close "${_dlb_open}")
      string(LENGTH "${_dlb_open}" _dlb_open_len)
      math(EXPR _dlb_start "9 + ${_dlb_open_len}")  # len("add_test(") == 9
      string(FIND "${_dlb_line}" "${_dlb_close}" _dlb_end)
      math(EXPR _dlb_len "${_dlb_end} - ${_dlb_start}")
      string(SUBSTRING "${_dlb_line}" ${_dlb_start} ${_dlb_len} _dlb_name)
      set_tests_properties("${_dlb_name}" PROPERTIES LABELS "${_dlb_labels}")
    endif()
  endforeach()
endif()
